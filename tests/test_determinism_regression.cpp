// Pinned-value determinism regression.
//
// The comm-fabric refactor (runtime/fabric.hpp) is required to be
// bit-identical to the pre-fabric engines: same seed => same modelled time,
// message count, volume and record count. These scenarios were captured on
// the original engines and must keep reproducing to the last bit. If an
// intentional cost-model or protocol change moves them, re-pin the constants
// in the same change and say why.
//
// Re-pinned once for the compact wire codec (varint + delta encoding is the
// default, frames carry a header and checksum, and the α–β/LogP cost is
// charged on the encoded bytes): volumes shrink ~45-65%, so modelled times
// and — where arrival order feeds back into bundling or retries — message
// and record counts move with them.
//
// Re-pinned a second time for the D1 lint migration (pmc-lint): Bundler
// bundles and the verifiers' boundary exchanges now flush in ascending
// destination order (sorted snapshot) instead of unordered_map bucket
// order. Message/byte/record totals of clean runs are unchanged — only the
// schedule (and therefore modelled times, and under faults the
// seq-number-derived verdicts) moves. Unbundled (eager) scenarios are
// untouched by construction.
//
// The snapshot-harvest async supersteps (run_ranks_snapshot) and the
// records-based receive charge did NOT move these pins: the snapshot path
// reproduces sequential poll visibility exactly (DESIGN.md §5d), and every
// pre-existing pinned scenario colors interior vertices first with large
// supersteps, so its mid-superstep polls deliver nothing and the receive
// charge never fires. SnapshotAsyncColoringScenarios below pins a
// small-superstep boundary-first schedule where polls do deliver.
#include <gtest/gtest.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pmc.hpp"
#include "partition/simple.hpp"

namespace pmc {
namespace {

/// Thread counts every pinned scenario must reproduce byte-identically at.
/// 1 runs the sequential backend; 2 and 4 run the work-stealing pool (4
/// oversubscribes the CI box on purpose — determinism may not depend on the
/// scheduler giving every worker a core).
constexpr int kThreadSweep[] = {1, 2, 4};

/// Hexfloat round-trips doubles exactly, so two fingerprints compare equal
/// iff every field is bit-identical.
std::string fingerprint(const RunResult& run, int rounds) {
  std::ostringstream os;
  os << std::hexfloat;
  os << run.sim_seconds << '|' << run.comm.messages << '|' << run.comm.bytes
     << '|' << run.comm.records << '|' << run.comm.collectives << '|'
     << rounds;
  os << '|' << run.load.min_seconds << '|' << run.load.max_seconds << '|'
     << run.load.mean_seconds;
  const FaultStats f = run.breakdown.total_faults();
  os << '|' << f.drops << '|' << f.duplicates << '|' << f.retries << '|'
     << f.backoff_seconds;
  return os.str();
}

struct Pinned {
  double sim_seconds;
  std::int64_t messages;
  std::int64_t bytes;
  std::int64_t records;
  std::int64_t collectives;
  int rounds;
};

void expect_pinned(const RunResult& run, int rounds, const Pinned& pin) {
  // Exact comparisons on purpose: the simulation is deterministic, so any
  // drift at all means the modelled semantics changed.
  EXPECT_EQ(run.sim_seconds, pin.sim_seconds);
  EXPECT_EQ(run.comm.messages, pin.messages);
  EXPECT_EQ(run.comm.bytes, pin.bytes);
  EXPECT_EQ(run.comm.records, pin.records);
  EXPECT_EQ(run.comm.collectives, pin.collectives);
  EXPECT_EQ(rounds, pin.rounds);
}

TEST(DeterminismRegression, DistributedMatchingScenarios) {
  const Graph g = grid_2d(48, 48, WeightKind::kUniformRandom, 61);
  Rank pr = 0, pc = 0;
  factor_processor_grid(8, pr, pc);
  const Partition p = grid_2d_partition(48, 48, pr, pc);
  const DistGraph dist = DistGraph::build(g, p);

  DistMatchingOptions bundled;
  const auto rb = match_distributed(dist, bundled);
  expect_pinned(rb.run, rb.max_activations,
                {7.0255800000003265e-05, 42, 2900, 370, 0, 8});

  DistMatchingOptions unbundled;
  unbundled.bundled = false;
  const auto ru = match_distributed(dist, unbundled);
  expect_pinned(ru.run, ru.max_activations,
                {0.00014883220000000067, 370, 15902, 370, 0, 59});

  DistMatchingOptions jittered;
  jittered.jitter_seconds = 2e-6;
  jittered.jitter_seed = 7;
  const auto rj = match_distributed(dist, jittered);
  expect_pinned(rj.run, rj.max_activations,
                {7.2780338560580251e-05, 42, 2900, 370, 0, 8});

  // Bundling and jitter change the schedule, never the matching itself.
  EXPECT_EQ(rb.matching.mate, ru.matching.mate);
  EXPECT_EQ(rb.matching.mate, rj.matching.mate);
}

TEST(DeterminismRegression, DistributedColoringScenarios) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  const auto rn = color_distributed(dist, DistColoringOptions::improved());
  expect_pinned(rn.run, rn.rounds,
                {0.0001314047999999999, 87, 4373, 423, 6, 3});

  const auto rf = color_distributed(dist, DistColoringOptions::fiab());
  expect_pinned(rf.run, rf.rounds,
                {0.00016563790000000017, 231, 14392, 2821, 6, 3});

  const auto rc = color_distributed(dist, DistColoringOptions::fiac());
  expect_pinned(rc.run, rc.rounds,
                {0.00014416809999999989, 119, 5397, 423, 6, 3});
}

// Fault-injection scenarios. The fault layer is deterministic in
// (fault seed, send sequence), so faulty runs pin exactly like clean ones —
// including the recovery traffic (retries, backoff, re-entries).
struct PinnedFaults {
  std::int64_t drops;
  std::int64_t duplicates;
  std::int64_t retries;
  double backoff_seconds;
};

void expect_pinned_faults(const RunResult& run, const PinnedFaults& pin) {
  const FaultStats f = run.breakdown.total_faults();
  EXPECT_EQ(f.drops, pin.drops);
  EXPECT_EQ(f.duplicates, pin.duplicates);
  EXPECT_EQ(f.retries, pin.retries);
  EXPECT_EQ(f.backoff_seconds, pin.backoff_seconds);
}

TEST(DeterminismRegression, FaultInjectedMatchingScenarios) {
  const Graph g = grid_2d(48, 48, WeightKind::kUniformRandom, 61);
  Rank pr = 0, pc = 0;
  factor_processor_grid(8, pr, pc);
  const Partition p = grid_2d_partition(48, 48, pr, pc);
  const DistGraph dist = DistGraph::build(g, p);

  DistMatchingOptions faulty;
  faulty.faults.drop_rate = 0.05;
  faulty.faults.duplicate_rate = 0.02;
  faulty.faults.seed = 14;
  const auto rf = match_distributed(dist, faulty);
  expect_pinned(rf.run, rf.max_activations,
                {9.322750000000259e-05, 87, 5416, 375, 0, 8});
  expect_pinned_faults(rf.run, {2, 1, 2, 7.0875999999990476e-06});

  // Jitter and injected delay compose with drops/duplicates; the combined
  // schedule still pins.
  DistMatchingOptions both = faulty;
  both.jitter_seconds = 2e-6;
  both.jitter_seed = 7;
  both.faults.delay_rate = 0.25;
  both.faults.max_extra_delay_seconds = 1e-5;
  const auto rj = match_distributed(dist, both);
  expect_pinned(rj.run, rj.max_activations,
                {0.00010581414528883152, 94, 5903, 420, 0, 8});
  expect_pinned_faults(rj.run, {2, 1, 5, 3.2837641613341976e-05});

  // Faults never change the matching itself: the transport recovers every
  // lost record and the locally-dominant matching is unique.
  const auto clean = match_distributed(dist, DistMatchingOptions{});
  EXPECT_EQ(rf.matching.mate, clean.matching.mate);
  EXPECT_EQ(rj.matching.mate, clean.matching.mate);
}

TEST(DeterminismRegression, FaultInjectedColoringScenario) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  auto opt = DistColoringOptions::improved();
  opt.faults.drop_rate = 0.05;
  opt.faults.duplicate_rate = 0.02;
  opt.faults.seed = 14;
  const auto r = color_distributed(dist, opt);
  expect_pinned(r.run, r.rounds,
                {0.0001327085999999999, 89, 4467, 430, 6, 3});
  expect_pinned_faults(r.run, {2, 1, 0, 0.0});
  EXPECT_EQ(r.fault_reentries, 7);
}

TEST(DeterminismRegression, FaultInjectedDistance2Scenario) {
  const Graph g = grid_2d(20, 20, WeightKind::kUnit, 63);
  const Partition p = grid_2d_partition(20, 20, 2, 2);
  DistColoringOptions opt;
  opt.faults.drop_rate = 0.20;
  opt.faults.duplicate_rate = 0.10;
  opt.faults.seed = 15;
  const auto r = color_distance2_distributed_native(g, p, opt);
  expect_pinned(r.run, r.rounds,
                {0.0001641873999999995, 34, 1909, 276, 8, 4});
  expect_pinned_faults(r.run, {5, 1, 0, 0.0});
}

TEST(DeterminismRegression, Distance2ColoringScenario) {
  const Graph g = grid_2d(20, 20, WeightKind::kUnit, 63);
  const Partition p = grid_2d_partition(20, 20, 2, 2);
  const auto rd = color_distance2_distributed_native(g, p, {});
  expect_pinned(rd.run, rd.rounds,
                {0.00011569199999999996, 25, 1410, 206, 6, 3});
}

// Pins for the snapshot-harvest asynchronous supersteps where mid-round
// polls really deliver messages: boundary-first ordering sends boundary
// colors in the earliest supersteps and 16-vertex supersteps (~1.6us) are
// shorter than the modelled latency (3.5us), so announcements land two to
// three supersteps later — mid-round, before the round-end drain. The
// schedule exercises both run_ranks_snapshot branches: the superstep after
// every allreduce starts from equalized clocks (always safe, parallel) and
// later supersteps diverge (sequential live-poll fallback).
TEST(DeterminismRegression, SnapshotAsyncColoringScenarios) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  auto opt = DistColoringOptions::improved();
  opt.superstep_size = 16;
  opt.local_order = LocalOrder::kBoundaryFirst;
  const auto r = color_distributed(dist, opt);
  expect_pinned(r.run, r.rounds,
                {0.00013699520000000023, 122, 5738, 416, 6, 3});
  EXPECT_GT(r.snapshot_parallel_supersteps, 0);
  EXPECT_GT(r.snapshot_fallback_supersteps, 0);
  EXPECT_EQ(r.snapshot_parallel_supersteps + r.snapshot_fallback_supersteps,
            r.total_supersteps);

  auto faulty = opt;
  faulty.faults.drop_rate = 0.05;
  faulty.faults.duplicate_rate = 0.02;
  faulty.faults.seed = 14;
  const auto rf = color_distributed(dist, faulty);
  expect_pinned(rf.run, rf.rounds,
                {0.00013696060000000025, 124, 5829, 421, 6, 3});
  expect_pinned_faults(rf.run, {4, 2, 0, 0.0});
  EXPECT_EQ(rf.fault_reentries, 6);
  EXPECT_GT(rf.snapshot_fallback_supersteps, 0);
}

// Pins for the two verifier boundary exchanges fixed by the D1 lint
// migration: their phase-1 sends used to walk an unordered_map in bucket
// order, so the message sequence depended on the standard library's hash
// layout. They now flush in ascending destination order; these pins hold
// that schedule (message count, volume, record count, modelled time) fixed.
TEST(DeterminismRegression, VerifierSendPathScenarios) {
  const Graph g = circuit_like(1500, 3000, 5, WeightKind::kUnit, 44);
  const Partition p =
      multilevel_partition(g, 6, MultilevelConfig::metis_like(2));
  const DistGraph dist = DistGraph::build(g, p);

  const Matching m = match_distributed(dist).matching;
  const auto vm = verify_matching_distributed(dist, m,
                                              MachineModel::blue_gene_p(),
                                              ExecConfig{1});
  EXPECT_EQ(vm.violations, 0);
  expect_pinned(vm.run, 0, {6.4322800000000014e-05, 30, 1717, 236, 2, 0});

  const auto cr = color_distributed(dist, DistColoringOptions::improved());
  const auto vc = verify_coloring_distributed(dist, cr.coloring,
                                              MachineModel::blue_gene_p(),
                                              ExecConfig{1});
  EXPECT_EQ(vc.violations, 0);
  // Identical to the matching pin on purpose: same dist graph, and every
  // per-record value (mate delta, color) happens to encode in one varint
  // byte, so both exchanges carry the same byte totals.
  expect_pinned(vc.run, 0, {6.4322800000000014e-05, 30, 1717, 236, 2, 0});
}

// ---------------------------------------------------------------------------
// Thread-count invariance: every pinned scenario above must reproduce
// byte-identically when the rank callbacks run on the execution backend's
// thread pool. threads == 1 is the sequential baseline the pins above
// already check, so equality across the sweep keeps all pins in force at
// every thread count.

TEST(ThreadInvariance, DistributedMatchingScenarios) {
  const Graph g = grid_2d(48, 48, WeightKind::kUniformRandom, 61);
  Rank pr = 0, pc = 0;
  factor_processor_grid(8, pr, pc);
  const Partition p = grid_2d_partition(48, 48, pr, pc);
  const DistGraph dist = DistGraph::build(g, p);

  DistMatchingOptions scenarios[3];
  scenarios[1].bundled = false;
  scenarios[2].faults.drop_rate = 0.05;
  scenarios[2].faults.duplicate_rate = 0.02;
  scenarios[2].faults.seed = 14;
  scenarios[2].jitter_seconds = 2e-6;
  scenarios[2].jitter_seed = 7;
  scenarios[2].faults.delay_rate = 0.25;
  scenarios[2].faults.max_extra_delay_seconds = 1e-5;

  for (auto& opt : scenarios) {
    std::string base;
    std::vector<VertexId> base_mate;
    for (const int threads : kThreadSweep) {
      opt.exec.threads = threads;
      const auto r = match_distributed(dist, opt);
      const std::string fp = fingerprint(r.run, r.max_activations);
      if (threads == 1) {
        base = fp;
        base_mate = r.matching.mate;
      } else {
        EXPECT_EQ(fp, base) << "threads=" << threads;
        EXPECT_EQ(r.matching.mate, base_mate) << "threads=" << threads;
      }
    }
  }
}

TEST(ThreadInvariance, DistributedColoringScenarios) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  // Async supersteps (the presets' default) run through the snapshot
  // harvest — deferred (parallel-capable) when the clock safety check
  // passes, live-poll sequential fallback when it does not; sync supersteps
  // exercise the unconditional deferred-lane merge. All must be invariant,
  // with and without faults. Scenarios [4] and [5] color boundary vertices
  // first with 16-vertex supersteps so mid-round polls really deliver
  // messages and both snapshot branches run.
  DistColoringOptions scenarios[6] = {
      DistColoringOptions::improved(), DistColoringOptions::improved(),
      DistColoringOptions::fiab(),     DistColoringOptions::fiac(),
      DistColoringOptions::improved(), DistColoringOptions::improved()};
  scenarios[1].superstep_mode = SuperstepMode::kSync;
  scenarios[1].faults.drop_rate = 0.05;
  scenarios[1].faults.duplicate_rate = 0.02;
  scenarios[1].faults.seed = 14;
  scenarios[3].superstep_mode = SuperstepMode::kSync;
  scenarios[4].superstep_size = 16;
  scenarios[4].local_order = LocalOrder::kBoundaryFirst;
  scenarios[5].superstep_size = 16;
  scenarios[5].local_order = LocalOrder::kBoundaryFirst;
  scenarios[5].faults.drop_rate = 0.05;
  scenarios[5].faults.duplicate_rate = 0.02;
  scenarios[5].faults.seed = 14;

  int scenario = 0;
  for (auto& opt : scenarios) {
    std::string base;
    std::vector<Color> base_color;
    for (const int threads : kThreadSweep) {
      opt.exec.threads = threads;
      const auto r = color_distributed(dist, opt);
      std::ostringstream os;
      os << fingerprint(r.run, r.rounds) << '#' << r.total_supersteps << '#'
         << r.fault_reentries << '#' << r.snapshot_parallel_supersteps << '#'
         << r.snapshot_fallback_supersteps;
      for (const EdgeId c : r.conflicts_per_round) os << ',' << c;
      if (opt.superstep_mode == SuperstepMode::kAsync) {
        // The safety decision is a pure function of the modelled clocks, so
        // the async path must really parallelize — at every thread count.
        EXPECT_GT(r.snapshot_parallel_supersteps, 0)
            << "threads=" << threads << " scenario=" << scenario;
      }
      if (scenario >= 4) {
        EXPECT_GT(r.snapshot_fallback_supersteps, 0)
            << "threads=" << threads << " scenario=" << scenario;
      }
      if (threads == 1) {
        base = os.str();
        base_color = r.coloring.color;
      } else {
        EXPECT_EQ(os.str(), base)
            << "threads=" << threads << " scenario=" << scenario;
        EXPECT_EQ(r.coloring.color, base_color)
            << "threads=" << threads << " scenario=" << scenario;
      }
    }
    ++scenario;
  }
}

TEST(ThreadInvariance, Distance2Scenarios) {
  const Graph g = grid_2d(20, 20, WeightKind::kUnit, 63);
  const Partition p = grid_2d_partition(20, 20, 2, 2);

  // Sync supersteps, async defaults, and async with 16-vertex supersteps
  // (multiple supersteps per round, so mid-round polls deliver and the
  // snapshot harvest exercises both its branches) — with and without
  // faults.
  DistColoringOptions scenarios[4];
  scenarios[0].superstep_mode = SuperstepMode::kSync;
  scenarios[1].superstep_mode = SuperstepMode::kSync;
  scenarios[1].faults.drop_rate = 0.20;
  scenarios[1].faults.duplicate_rate = 0.10;
  scenarios[1].faults.seed = 15;
  scenarios[2].superstep_size = 16;
  scenarios[3].superstep_size = 16;
  scenarios[3].faults.drop_rate = 0.20;
  scenarios[3].faults.duplicate_rate = 0.10;
  scenarios[3].faults.seed = 15;

  int scenario = 0;
  for (auto& opt : scenarios) {
    std::string base;
    std::vector<Color> base_color;
    for (const int threads : kThreadSweep) {
      opt.exec.threads = threads;
      const auto r = color_distance2_distributed_native(g, p, opt);
      std::ostringstream os;
      os << fingerprint(r.run, r.rounds) << '#' << r.fault_reentries << '#'
         << r.snapshot_parallel_supersteps << '#'
         << r.snapshot_fallback_supersteps;
      if (scenario >= 2) {
        EXPECT_GT(r.snapshot_parallel_supersteps, 0)
            << "threads=" << threads << " scenario=" << scenario;
        EXPECT_GT(r.snapshot_fallback_supersteps, 0)
            << "threads=" << threads << " scenario=" << scenario;
      }
      if (threads == 1) {
        base = os.str();
        base_color = r.coloring.color;
      } else {
        EXPECT_EQ(os.str(), base)
            << "threads=" << threads << " scenario=" << scenario;
        EXPECT_EQ(r.coloring.color, base_color)
            << "threads=" << threads << " scenario=" << scenario;
      }
    }
    ++scenario;
  }
}

TEST(ThreadInvariance, JonesPlassmannAndVerifiers) {
  const Graph g = circuit_like(1500, 3000, 5, WeightKind::kUnit, 44);
  const Partition p =
      multilevel_partition(g, 6, MultilevelConfig::metis_like(2));
  const DistGraph dist = DistGraph::build(g, p);

  JonesPlassmannOptions jp;
  std::string jp_base, vc_base, vm_base;
  std::vector<Color> jp_color;
  const Matching m = match_distributed(dist).matching;
  for (const int threads : kThreadSweep) {
    jp.exec.threads = threads;
    const auto r = color_jones_plassmann(dist, jp);
    const std::string fp = fingerprint(r.run, r.rounds);
    const auto vc = verify_coloring_distributed(
        dist, r.coloring, MachineModel::blue_gene_p(), ExecConfig{threads});
    EXPECT_EQ(vc.violations, 0);
    const std::string vcfp = fingerprint(vc.run, 0);
    const auto vm = verify_matching_distributed(
        dist, m, MachineModel::blue_gene_p(), ExecConfig{threads});
    EXPECT_EQ(vm.violations, 0);
    const std::string vmfp = fingerprint(vm.run, 0);
    if (threads == 1) {
      jp_base = fp;
      jp_color = r.coloring.color;
      vc_base = vcfp;
      vm_base = vmfp;
    } else {
      EXPECT_EQ(fp, jp_base) << "threads=" << threads;
      EXPECT_EQ(r.coloring.color, jp_color) << "threads=" << threads;
      EXPECT_EQ(vcfp, vc_base) << "threads=" << threads;
      EXPECT_EQ(vmfp, vm_base) << "threads=" << threads;
    }
  }
}

TEST(ThreadInvariance, TraceOutputIsByteIdentical) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  auto opt = DistColoringOptions::improved();
  opt.superstep_mode = SuperstepMode::kSync;
  opt.faults.drop_rate = 0.05;
  opt.faults.duplicate_rate = 0.02;
  opt.faults.seed = 14;

  std::string base;
  for (const int threads : kThreadSweep) {
    const std::string path = testing::TempDir() + "pmc_thread_trace_" +
                             std::to_string(threads) + ".jsonl";
    opt.trace.jsonl_path = path;
    opt.exec.threads = threads;
    (void)color_distributed(dist, opt);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream contents;
    contents << in.rdbuf();
    ASSERT_FALSE(contents.str().empty());
    if (threads == 1) {
      base = contents.str();
    } else {
      EXPECT_EQ(contents.str(), base) << "threads=" << threads;
    }
  }
}

TEST(ThreadInvariance, AsyncMatchingTraceIsByteIdentical) {
  // The windowed event engine must reproduce the sequential JSONL trace to
  // the byte at every thread count — event order, send sequencing, fault
  // verdicts, retry/backoff notes and all — with and without faults.
  const Graph g = grid_2d(32, 32, WeightKind::kUniformRandom, 61);
  const Partition p = grid_2d_partition(32, 32, 2, 4);
  const DistGraph dist = DistGraph::build(g, p);

  DistMatchingOptions scenarios[2];
  scenarios[1].faults.drop_rate = 0.05;
  scenarios[1].faults.duplicate_rate = 0.02;
  scenarios[1].faults.seed = 14;
  scenarios[1].jitter_seconds = 2e-6;
  scenarios[1].jitter_seed = 7;

  int scenario = 0;
  for (auto& opt : scenarios) {
    std::string base_trace;
    std::string base_fp;
    for (const int threads : kThreadSweep) {
      const std::string path = testing::TempDir() + "pmc_async_trace_" +
                               std::to_string(scenario) + "_" +
                               std::to_string(threads) + ".jsonl";
      opt.trace.jsonl_path = path;
      opt.exec.threads = threads;
      const auto r = match_distributed(dist, opt);
      const std::string fp = fingerprint(r.run, r.max_activations);
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.good());
      std::ostringstream contents;
      contents << in.rdbuf();
      ASSERT_FALSE(contents.str().empty());
      if (threads == 1) {
        base_trace = contents.str();
        base_fp = fp;
      } else {
        EXPECT_EQ(contents.str(), base_trace)
            << "threads=" << threads << " scenario=" << scenario;
        EXPECT_EQ(fp, base_fp)
            << "threads=" << threads << " scenario=" << scenario;
      }
    }
    ++scenario;
  }
}

TEST(ThreadInvariance, AsyncColoringTraceIsByteIdentical) {
  // Snapshot-harvested async supersteps must reproduce the sequential JSONL
  // trace to the byte at every thread count — send sequencing, fault
  // verdicts, work-phase attribution and all — in a schedule where
  // mid-round polls deliver messages and both snapshot branches run.
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  DistColoringOptions scenarios[2] = {DistColoringOptions::improved(),
                                      DistColoringOptions::improved()};
  for (auto& opt : scenarios) {
    opt.superstep_size = 16;
    opt.local_order = LocalOrder::kBoundaryFirst;
  }
  scenarios[1].faults.drop_rate = 0.05;
  scenarios[1].faults.duplicate_rate = 0.02;
  scenarios[1].faults.seed = 14;

  int scenario = 0;
  for (auto& opt : scenarios) {
    std::string base_trace;
    std::string base_fp;
    for (const int threads : kThreadSweep) {
      const std::string path = testing::TempDir() + "pmc_async_color_trace_" +
                               std::to_string(scenario) + "_" +
                               std::to_string(threads) + ".jsonl";
      opt.trace.jsonl_path = path;
      opt.exec.threads = threads;
      const auto r = color_distributed(dist, opt);
      EXPECT_GT(r.snapshot_parallel_supersteps, 0);
      EXPECT_GT(r.snapshot_fallback_supersteps, 0);
      const std::string fp = fingerprint(r.run, r.rounds);
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.good());
      std::ostringstream contents;
      contents << in.rdbuf();
      ASSERT_FALSE(contents.str().empty());
      if (threads == 1) {
        base_trace = contents.str();
        base_fp = fp;
      } else {
        EXPECT_EQ(contents.str(), base_trace)
            << "threads=" << threads << " scenario=" << scenario;
        EXPECT_EQ(fp, base_fp)
            << "threads=" << threads << " scenario=" << scenario;
      }
    }
    ++scenario;
  }
}

// ---------------------------------------------------------------------------
// Codec invariance of modelled *work*: the wire codec changes how many bytes
// cross the fabric (and therefore transfer times), but never which records a
// rank applies — so the charged-compute side of a run must not move between
// the fixed and compact codecs. The async receive charge used to be
// payload.size()/12, which silently tied modelled compute to the encoding.

void expect_same_work(const DistColoringResult& a,
                      const DistColoringResult& b) {
  // Exact per-rank vectors, not totals: a compensating error (one rank
  // overcharged, another undercharged) must not pass.
  // (load_stats is deliberately not compared: it accumulates interior and
  // boundary charges into one per-rank total in execution order, and the
  // codec's different transfer times can shift *when* a receive charge
  // lands between coloring charges — same values, different floating-point
  // summation order in the combined accumulator. The per-phase breakdown
  // vectors are the codec-invariance contract.)
  EXPECT_EQ(a.run.breakdown.interior_seconds, b.run.breakdown.interior_seconds);
  EXPECT_EQ(a.run.breakdown.boundary_seconds, b.run.breakdown.boundary_seconds);
  EXPECT_EQ(a.run.breakdown.other_seconds, b.run.breakdown.other_seconds);
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  EXPECT_EQ(a.run.comm.records, b.run.comm.records);
  // The codecs must still genuinely differ on the wire for the comparison
  // to mean anything.
  EXPECT_NE(a.run.comm.bytes, b.run.comm.bytes);
}

TEST(DeterminismRegression, ReceiveChargesAreCodecInvariant) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  // Async, boundary-first, 16-vertex supersteps: mid-round polls deliver
  // messages, so the records-based receive charge really fires.
  auto opt = DistColoringOptions::improved();
  opt.superstep_size = 16;
  opt.local_order = LocalOrder::kBoundaryFirst;
  auto fixed = opt;
  fixed.codec = WireCodec::kFixed;
  const auto rc = color_distributed(dist, opt);
  const auto rf = color_distributed(dist, fixed);
  EXPECT_GT(rc.snapshot_fallback_supersteps, 0);
  expect_same_work(rc, rf);

  auto faulty = opt;
  faulty.faults.drop_rate = 0.05;
  faulty.faults.duplicate_rate = 0.02;
  faulty.faults.seed = 14;
  auto faulty_fixed = faulty;
  faulty_fixed.codec = WireCodec::kFixed;
  expect_same_work(color_distributed(dist, faulty),
                   color_distributed(dist, faulty_fixed));

  // Distance-2 exercises its own poll loop.
  const Graph g2 = grid_2d(20, 20, WeightKind::kUnit, 63);
  const Partition p2 = grid_2d_partition(20, 20, 2, 2);
  DistColoringOptions d2;
  d2.superstep_size = 16;
  auto d2_fixed = d2;
  d2_fixed.codec = WireCodec::kFixed;
  expect_same_work(color_distance2_distributed_native(g2, p2, d2),
                   color_distance2_distributed_native(g2, p2, d2_fixed));
}

}  // namespace
}  // namespace pmc
