#include "graph/builder.hpp"

#include <algorithm>
#include <tuple>

#include "support/error.hpp"

namespace pmc {

GraphBuilder::GraphBuilder(VertexId num_vertices, bool weighted,
                           DuplicatePolicy policy)
    : num_vertices_(num_vertices), weighted_(weighted), policy_(policy) {
  PMC_REQUIRE(num_vertices >= 0, "negative vertex count " << num_vertices);
}

void GraphBuilder::add_edge(VertexId u, VertexId v, Weight w) {
  PMC_REQUIRE(u >= 0 && u < num_vertices_,
              "vertex " << u << " out of range [0, " << num_vertices_ << ")");
  PMC_REQUIRE(v >= 0 && v < num_vertices_,
              "vertex " << v << " out of range [0, " << num_vertices_ << ")");
  if (u == v) return;  // drop self-loops
  if (u > v) std::swap(u, v);
  edges_.push_back(RawEdge{u, v, w});
}

Graph GraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });

  // Deduplicate in place according to the policy.
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].u == edges_[i].u &&
        edges_[out - 1].v == edges_[i].v) {
      switch (policy_) {
        case DuplicatePolicy::kError:
          PMC_FAIL("duplicate edge (" << edges_[i].u << ", " << edges_[i].v
                                      << ")");
        case DuplicatePolicy::kKeepFirst:
          break;
        case DuplicatePolicy::kKeepMax:
          edges_[out - 1].w = std::max(edges_[out - 1].w, edges_[i].w);
          break;
      }
      continue;
    }
    edges_[out++] = edges_[i];
  }
  edges_.resize(out);

  // Count degrees (both directions).
  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const RawEdge& e : edges_) {
    ++offsets[static_cast<std::size_t>(e.u) + 1];
    ++offsets[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }

  std::vector<VertexId> adj(static_cast<std::size_t>(offsets.back()));
  std::vector<Weight> weights;
  if (weighted_) weights.resize(adj.size());

  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  // Edges are sorted by (u, v); writing u->v then v->u in this order leaves
  // every adjacency list sorted except the v->u back-arcs, so sort each list
  // afterwards. To keep weights aligned we sort index pairs per vertex.
  for (const RawEdge& e : edges_) {
    const auto cu = static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++);
    adj[cu] = e.v;
    if (weighted_) weights[cu] = e.w;
    const auto cv = static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++);
    adj[cv] = e.u;
    if (weighted_) weights[cv] = e.w;
  }

  for (VertexId v = 0; v < num_vertices_; ++v) {
    const auto begin = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
    if (weighted_) {
      // Sort (neighbor, weight) pairs together.
      std::vector<std::pair<VertexId, Weight>> tmp;
      tmp.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        tmp.emplace_back(adj[i], weights[i]);
      }
      std::sort(tmp.begin(), tmp.end());
      for (std::size_t i = begin; i < end; ++i) {
        adj[i] = tmp[i - begin].first;
        weights[i] = tmp[i - begin].second;
      }
    } else {
      std::sort(adj.begin() + static_cast<std::ptrdiff_t>(begin),
                adj.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(std::move(offsets), std::move(adj), std::move(weights));
}

Graph graph_from_edges(
    VertexId num_vertices,
    const std::vector<std::tuple<VertexId, VertexId, Weight>>& edges,
    DuplicatePolicy policy) {
  GraphBuilder builder(num_vertices, /*weighted=*/true, policy);
  for (const auto& [u, v, w] : edges) {
    builder.add_edge(u, v, w);
  }
  return std::move(builder).build();
}

Graph graph_from_edges(VertexId num_vertices,
                       const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices, /*weighted=*/false);
  for (const auto& [u, v] : edges) {
    builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

}  // namespace pmc
