// Fixture: D3 must fire — a message struct shipped as raw bytes with memcpy
// and decoded with reinterpret_cast instead of the frame codec.
#include <cstdint>
#include <cstring>
#include <vector>

struct WireRecord {
  std::int64_t vertex;
  std::int32_t color;
};

std::vector<std::byte> encode_raw(const WireRecord& rec) {
  std::vector<std::byte> bytes(sizeof(WireRecord));
  std::memcpy(bytes.data(), &rec, sizeof(WireRecord));
  return bytes;
}

WireRecord decode_raw(const std::vector<std::byte>& bytes) {
  return *reinterpret_cast<const WireRecord*>(bytes.data());
}
