#!/usr/bin/env bash
# Perf-regression guard over the committed BENCH_*.json baselines.
#
# Each committed artifact must (a) parse as JSON, (b) carry the sweep
# metadata (bench name, hardware_concurrency, rows), (c) have every row
# carry workload/threads/sim_seconds/wall_seconds, and (d) keep each
# workload's modelled sim_seconds bit-identical across the thread sweep —
# the execution backend's contract: thread count may change wall-clock
# time only, never what the simulation computes.
#
#   ./tools/check_bench_artifacts.sh [artifact.json ...]
#
# With no arguments, checks every BENCH_*.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
  artifacts=("$@")
else
  shopt -s nullglob
  artifacts=(BENCH_*.json)
  shopt -u nullglob
fi
if [ "${#artifacts[@]}" -eq 0 ]; then
  echo "check_bench_artifacts: no BENCH_*.json artifacts found" >&2
  exit 1
fi

python3 - "${artifacts[@]}" <<'EOF'
import json
import sys

REQUIRED_ROW_KEYS = ("workload", "threads", "sim_seconds", "wall_seconds")
failures = 0


def fail(path, msg):
    global failures
    failures += 1
    print(f"check_bench_artifacts: {path}: {msg}", file=sys.stderr)


for path in sys.argv[1:]:
    failures_before = failures
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")
        continue
    for key in ("bench", "hardware_concurrency", "rows"):
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(path, "'rows' must be a non-empty list")
        continue
    sim_by_workload = {}
    threads_by_workload = {}
    for i, row in enumerate(rows):
        missing = [k for k in REQUIRED_ROW_KEYS if k not in row]
        if missing:
            fail(path, f"row {i} missing key(s): {', '.join(missing)}")
            continue
        w = row["workload"]
        threads_by_workload.setdefault(w, set()).add(row["threads"])
        sim_by_workload.setdefault(w, set()).add(row["sim_seconds"])
    for w, sims in sim_by_workload.items():
        if len(sims) != 1:
            fail(path,
                 f"workload '{w}': sim_seconds moved across the thread "
                 f"sweep ({sorted(sims)}) — the backend must be "
                 f"bit-identical at every thread count")
    for w, threads in threads_by_workload.items():
        if 1 not in threads:
            fail(path, f"workload '{w}': no threads=1 baseline row")
        if len(threads) < 2:
            fail(path, f"workload '{w}': sweep has a single thread count")
    if failures == failures_before:
        n = len(rows)
        hw = doc.get("hardware_concurrency")
        print(f"check_bench_artifacts: {path}: OK "
              f"({n} rows, {len(sim_by_workload)} workload(s), "
              f"hardware_concurrency={hw})")

sys.exit(1 if failures else 0)
EOF
