// Compressed-sparse-row representation of an undirected, optionally
// edge-weighted graph.
//
// This is the input type of every algorithm in pmc. Both directions of each
// undirected edge are stored (u in adj(v) iff v in adj(u), with equal
// weights), adjacency lists are sorted by neighbor id, and self-loops and
// parallel edges are disallowed — the class invariants are established by
// GraphBuilder and re-checkable via validate().
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace pmc {

/// Immutable undirected graph in CSR form.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Constructs from raw CSR arrays. `weights` may be empty (unweighted) or
  /// have the same length as `adj`. Validates structural invariants.
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adj,
        std::vector<Weight> weights);

  /// Number of vertices.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0
                            : static_cast<VertexId>(offsets_.size()) - 1;
  }

  /// Number of undirected edges (half the stored directed arcs).
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(adj_.size()) / 2;
  }

  /// Number of stored directed arcs (2 * num_edges()).
  [[nodiscard]] EdgeId num_arcs() const noexcept {
    return static_cast<EdgeId>(adj_.size());
  }

  [[nodiscard]] bool has_weights() const noexcept { return !weights_.empty(); }

  [[nodiscard]] EdgeId degree(VertexId v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

  /// Neighbors of v, sorted ascending.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {adj_.data() + begin, end - begin};
  }

  /// Weights aligned with neighbors(v). Only valid when has_weights().
  [[nodiscard]] std::span<const Weight> weights(VertexId v) const {
    const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {weights_.data() + begin, end - begin};
  }

  /// Arc index range [offset_begin(v), offset_end(v)) into adjacency arrays.
  [[nodiscard]] EdgeId offset_begin(VertexId v) const {
    return offsets_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] EdgeId offset_end(VertexId v) const {
    return offsets_[static_cast<std::size_t>(v) + 1];
  }

  /// Neighbor stored at arc index e.
  [[nodiscard]] VertexId arc_target(EdgeId e) const {
    return adj_[static_cast<std::size_t>(e)];
  }

  /// Weight stored at arc index e (1.0 when unweighted).
  [[nodiscard]] Weight arc_weight(EdgeId e) const {
    return weights_.empty() ? Weight{1}
                            : weights_[static_cast<std::size_t>(e)];
  }

  /// Weight of edge (u, v); throws if the edge does not exist.
  [[nodiscard]] Weight edge_weight(VertexId u, VertexId v) const;

  /// True iff edge (u, v) exists (binary search; O(log degree)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Maximum degree over all vertices (0 on an empty graph).
  [[nodiscard]] EdgeId max_degree() const noexcept;

  /// Minimum degree over all vertices (0 on an empty graph).
  [[nodiscard]] EdgeId min_degree() const noexcept;

  /// Sum of all edge weights (each undirected edge counted once).
  [[nodiscard]] Weight total_weight() const noexcept;

  /// Re-checks all class invariants (symmetry, sortedness, no loops or
  /// multi-edges, matching weights). Throws pmc::Error on violation.
  void validate() const;

  /// Human-readable one-line summary ("|V|=..., |E|=..., ...").
  [[nodiscard]] std::string summary() const;

  /// Approximate heap footprint in bytes.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  std::vector<EdgeId> offsets_;
  std::vector<VertexId> adj_;
  std::vector<Weight> weights_;
};

/// Metadata attached to a bipartite graph built from a sparse matrix:
/// vertices [0, num_left) are rows, [num_left, num_left+num_right) columns.
struct BipartiteInfo {
  VertexId num_left = 0;
  VertexId num_right = 0;

  [[nodiscard]] bool is_left(VertexId v) const noexcept { return v < num_left; }
};

}  // namespace pmc
