#include "runtime/bsp_engine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pmc {

BspEngine::BspEngine(Rank num_ranks, MachineModel model)
    : model_(std::move(model)) {
  PMC_REQUIRE(num_ranks >= 1, "need at least one rank");
  clocks_.assign(static_cast<std::size_t>(num_ranks), 0.0);
  compute_seconds_.assign(static_cast<std::size_t>(num_ranks), 0.0);
  inboxes_.resize(static_cast<std::size_t>(num_ranks));
}

void BspEngine::charge(Rank r, double work_units) {
  const double seconds = model_.compute_seconds(work_units);
  clocks_[static_cast<std::size_t>(r)] += seconds;
  compute_seconds_[static_cast<std::size_t>(r)] += seconds;
}

LoadStats BspEngine::load_stats() const {
  LoadStats load;
  const auto [mn, mx] =
      std::minmax_element(compute_seconds_.begin(), compute_seconds_.end());
  load.min_seconds = *mn;
  load.max_seconds = *mx;
  double total = 0.0;
  for (double s : compute_seconds_) total += s;
  load.mean_seconds = total / static_cast<double>(num_ranks());
  return load;
}

void BspEngine::send(Rank src, Rank dst, std::vector<std::byte> payload,
                     std::int64_t records) {
  PMC_REQUIRE(dst >= 0 && dst < num_ranks(), "send to invalid rank " << dst);
  PMC_REQUIRE(dst != src, "send to self (rank " << src << ")");
  // Sender-side per-message software overhead (see MachineModel).
  clocks_[static_cast<std::size_t>(src)] += model_.send_overhead;
  double arrival =
      clocks_[static_cast<std::size_t>(src)] +
      model_.message_seconds(static_cast<double>(payload.size()));
  const std::uint64_t channel = (static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(src))
                                 << 32) |
                                static_cast<std::uint32_t>(dst);
  auto [it, inserted] = channel_last_arrival_.try_emplace(channel, arrival);
  if (!inserted) {
    arrival = std::max(arrival, it->second);
    it->second = arrival;
  }
  comm_.messages += 1;
  comm_.bytes += static_cast<std::int64_t>(payload.size()) +
                 static_cast<std::int64_t>(model_.header_bytes);
  comm_.records += records;

  BspMessage msg;
  msg.src = src;
  msg.arrival = arrival;
  msg.payload = std::move(payload);
  // Insert keeping the inbox sorted by arrival; messages mostly arrive in
  // order so the scan from the back is near O(1).
  auto& inbox = inboxes_[static_cast<std::size_t>(dst)];
  auto pos = inbox.end();
  while (pos != inbox.begin() && std::prev(pos)->arrival > msg.arrival) {
    --pos;
  }
  inbox.insert(pos, std::move(msg));
}

std::vector<BspMessage> BspEngine::poll(Rank r) {
  auto& inbox = inboxes_[static_cast<std::size_t>(r)];
  const double now_r = clocks_[static_cast<std::size_t>(r)];
  std::vector<BspMessage> out;
  while (!inbox.empty() && inbox.front().arrival <= now_r) {
    out.push_back(std::move(inbox.front()));
    inbox.pop_front();
  }
  return out;
}

void BspEngine::barrier() {
  double horizon = *std::max_element(clocks_.begin(), clocks_.end());
  for (const auto& inbox : inboxes_) {
    for (const auto& msg : inbox) {
      horizon = std::max(horizon, msg.arrival);
    }
  }
  horizon += model_.collective_seconds(num_ranks());
  std::fill(clocks_.begin(), clocks_.end(), horizon);
  comm_.collectives += 1;
}

std::vector<BspMessage> BspEngine::drain(Rank r) {
  auto& inbox = inboxes_[static_cast<std::size_t>(r)];
  std::vector<BspMessage> out(std::make_move_iterator(inbox.begin()),
                              std::make_move_iterator(inbox.end()));
  inbox.clear();
  // Receiving after a barrier: the rank has already waited past all
  // arrivals, so its clock does not move here.
  return out;
}

void BspEngine::allreduce() { barrier(); }

double BspEngine::now(Rank r) const {
  return clocks_[static_cast<std::size_t>(r)];
}

double BspEngine::time() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

}  // namespace pmc
