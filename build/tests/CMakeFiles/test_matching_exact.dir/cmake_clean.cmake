file(REMOVE_RECURSE
  "CMakeFiles/test_matching_exact.dir/test_matching_exact.cpp.o"
  "CMakeFiles/test_matching_exact.dir/test_matching_exact.cpp.o.d"
  "test_matching_exact"
  "test_matching_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matching_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
