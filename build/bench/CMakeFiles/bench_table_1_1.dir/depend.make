# Empty dependencies file for bench_table_1_1.
# This may be replaced when dependencies are built.
