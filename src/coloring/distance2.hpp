// Distance-2 graph coloring — the derivative-computation variant the paper's
// introduction motivates ("efficient computation of sparse Jacobian and
// Hessian matrices"): vertices at distance <= 2 must receive distinct
// colors. Greedy first-fit uses at most Δ² + 1 colors.
//
// Provided as the library's extension beyond the paper's distance-1
// experiments: a sequential greedy algorithm plus verification.
#pragma once

#include "coloring/coloring.hpp"
#include "coloring/parallel.hpp"
#include "coloring/sequential.hpp"
#include "graph/csr_graph.hpp"
#include "partition/partition.hpp"

namespace pmc {

/// Greedy distance-2 coloring in the given static ordering.
[[nodiscard]] Coloring greedy_distance2_coloring(
    const Graph& g, OrderingKind ordering = OrderingKind::kNatural,
    std::uint64_t seed = 0);

/// True iff no two vertices at distance 1 or 2 share a color.
[[nodiscard]] bool is_proper_distance2_coloring(const Graph& g,
                                                const Coloring& c,
                                                std::string* why = nullptr);

/// Distributed distance-2 coloring: runs the paper's speculative framework
/// on the square graph G² (a distance-1 coloring of G² is a distance-2
/// coloring of g) under the *original* partition, so communication
/// patterns reflect the 2-hop ghost exchange a native implementation would
/// perform. Production systems avoid materializing G²; for the simulated
/// reproduction the semantics are identical.
[[nodiscard]] DistColoringResult color_distance2_distributed(
    const Graph& g, const Partition& p,
    const DistColoringOptions& options = DistColoringOptions::improved());

}  // namespace pmc
