#include "matching/sequential.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <tuple>
#include <vector>

#include "support/error.hpp"

namespace pmc {

Matching greedy_matching(const Graph& g) {
  struct E {
    Weight w;
    VertexId u;
    VertexId v;
  };
  std::vector<E> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v) {
        edges.push_back(E{g.has_weights() ? ws[i] : Weight{1}, v, nbrs[i]});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const E& a, const E& b) {
    if (a.w != b.w) return a.w > b.w;
    return std::tie(a.u, a.v) < std::tie(b.u, b.v);
  });
  Matching m;
  m.mate.assign(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  for (const E& e : edges) {
    if (m.mate[static_cast<std::size_t>(e.u)] == kNoVertex &&
        m.mate[static_cast<std::size_t>(e.v)] == kNoVertex) {
      m.mate[static_cast<std::size_t>(e.u)] = e.v;
      m.mate[static_cast<std::size_t>(e.v)] = e.u;
    }
  }
  return m;
}

namespace {

/// Shared implementation of the candidate-mate (pointer) algorithm.
Matching locally_dominant_impl(const Graph& g, SequentialMatchingStats* stats) {
  const VertexId n = g.num_vertices();
  Matching m;
  m.mate.assign(static_cast<std::size_t>(n), kNoVertex);
  if (n == 0) return m;

  // Per-vertex arc order: by weight descending, ties by smallest neighbor
  // label (the paper's tie-breaking rule).
  std::vector<EdgeId> arc_order(static_cast<std::size_t>(g.num_arcs()));
  std::iota(arc_order.begin(), arc_order.end(), EdgeId{0});
  for (VertexId v = 0; v < n; ++v) {
    const auto b = g.offset_begin(v);
    const auto e = g.offset_end(v);
    std::sort(arc_order.begin() + b, arc_order.begin() + e,
              [&g](EdgeId x, EdgeId y) {
                const Weight wx = g.arc_weight(x);
                const Weight wy = g.arc_weight(y);
                if (wx != wy) return wx > wy;
                return g.arc_target(x) < g.arc_target(y);
              });
  }

  std::vector<EdgeId> ptr(static_cast<std::size_t>(n), 0);
  std::vector<VertexId> cand(static_cast<std::size_t>(n), kNoVertex);

  auto alive = [&m](VertexId u) {
    return m.mate[static_cast<std::size_t>(u)] == kNoVertex;
  };
  // Advances v's pointer past dead candidates and returns the new candidate
  // (kNoVertex when exhausted).
  auto recompute = [&](VertexId v) {
    const auto deg = g.degree(v);
    auto& p = ptr[static_cast<std::size_t>(v)];
    while (p < deg) {
      const VertexId u = g.arc_target(
          arc_order[static_cast<std::size_t>(g.offset_begin(v) + p)]);
      if (alive(u)) break;
      ++p;
      if (stats != nullptr) ++stats->pointer_advances;
    }
    cand[static_cast<std::size_t>(v)] =
        p < deg ? g.arc_target(arc_order[static_cast<std::size_t>(
                      g.offset_begin(v) + p)])
                : kNoVertex;
    return cand[static_cast<std::size_t>(v)];
  };

  std::deque<VertexId> matched_queue;
  auto match = [&](VertexId a, VertexId b) {
    m.mate[static_cast<std::size_t>(a)] = b;
    m.mate[static_cast<std::size_t>(b)] = a;
    matched_queue.push_back(a);
    matched_queue.push_back(b);
  };

  for (VertexId v = 0; v < n; ++v) {
    recompute(v);  // initial candidate: heaviest neighbor
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = cand[static_cast<std::size_t>(v)];
    if (c != kNoVertex && alive(v) && alive(c) &&
        cand[static_cast<std::size_t>(c)] == v && c > v) {
      match(v, c);  // locally dominant edge (reciprocal candidates)
    }
  }

  while (!matched_queue.empty()) {
    const VertexId x = matched_queue.front();
    matched_queue.pop_front();
    for (VertexId u : g.neighbors(x)) {
      if (stats != nullptr) ++stats->arc_touches;
      if (!alive(u) || cand[static_cast<std::size_t>(u)] != x) continue;
      const VertexId c = recompute(u);
      if (c != kNoVertex && alive(c) && cand[static_cast<std::size_t>(c)] == u) {
        match(u, c);
      }
    }
  }
  return m;
}

}  // namespace

Matching locally_dominant_matching(const Graph& g) {
  return locally_dominant_impl(g, nullptr);
}

Matching locally_dominant_matching_with_stats(const Graph& g,
                                              SequentialMatchingStats& stats) {
  stats = SequentialMatchingStats{};
  return locally_dominant_impl(g, &stats);
}

}  // namespace pmc
