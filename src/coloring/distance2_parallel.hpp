// Native distributed distance-2 coloring.
//
// The paper's introduction motivates distance-2 coloring (sparse Jacobian /
// Hessian compression); Zoltan — where the paper's coloring code lives —
// ships a distributed distance-2 colorer built on the same speculative
// framework. This module reproduces that design *natively*: instead of
// materializing the square graph (see color_distance2_distributed), each
// rank builds a two-hop view of its share:
//
//   * adjacency is stored for owned vertices and their distance-1 ghosts
//     (every neighbor of a distance-1 ghost is within distance 2 of an
//     owned vertex, so all targets are in the view);
//   * a vertex's color update must reach every rank owning a vertex within
//     distance <= 2, so recipient lists span two hops;
//   * conflict detection walks N(v) and N(N(v)) and recolors the endpoint
//     with the smaller random priority, exactly like the distance-1
//     framework.
#pragma once

#include "coloring/parallel.hpp"
#include "graph/csr_graph.hpp"
#include "partition/partition.hpp"

namespace pmc {

/// One rank's two-hop view of a partitioned graph.
/// Local ids: [0, num_owned) owned, then distance-1 ghosts
/// [num_owned, num_adjacent), then distance-2 ghosts. Adjacency is stored
/// for local ids < num_adjacent.
struct Dist2RankView {
  Rank rank = 0;
  VertexId num_owned = 0;
  VertexId num_adjacent = 0;  ///< owned + distance-1 ghosts
  std::vector<VertexId> global_ids;
  std::unordered_map<VertexId, VertexId> global_to_local;
  std::vector<EdgeId> offsets;  ///< over [0, num_adjacent)
  std::vector<VertexId> adj;    ///< local ids (all within the view)
  /// Owned vertices with any non-owned vertex within distance <= 2.
  std::vector<VertexId> d2_boundary;
  /// For each owned vertex (indexed by local id), the sorted ranks owning a
  /// vertex within distance <= 2 (empty for distance-2-interior vertices).
  std::vector<std::vector<Rank>> recipients;

  [[nodiscard]] VertexId num_local() const noexcept {
    return static_cast<VertexId>(global_ids.size());
  }
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId local) const {
    const auto b = static_cast<std::size_t>(offsets[static_cast<std::size_t>(local)]);
    const auto e = static_cast<std::size_t>(offsets[static_cast<std::size_t>(local) + 1]);
    return {adj.data() + b, e - b};
  }
};

/// Builds all ranks' two-hop views.
[[nodiscard]] std::vector<Dist2RankView> build_dist2_views(const Graph& g,
                                                           const Partition& p);

/// Runs the speculative distance-2 coloring on the two-hop views.
/// Communication is always neighbor-customized (the paper's NEW mode).
[[nodiscard]] DistColoringResult color_distance2_distributed_native(
    const Graph& g, const Partition& p,
    const DistColoringOptions& options = DistColoringOptions::improved());

}  // namespace pmc
