// Fixture: D8 cross-TU decoder half — reads WireMsg::kColorRec records in
// the encoder's (id, color) order, so the pair with d8_pair_encoder.cpp is
// symmetric. Scan fodder for the lint fixture suite, not compiled.
#include <cstdint>

enum class WireMsg : std::uint8_t { kColorRec = 1 };

struct FrameReader {
  std::uint8_t read_u8();
  std::int64_t read_id();
  std::int32_t read_color();
  bool done();
};

void on_color(std::int64_t v, std::int32_t c);
void on_done(bool ok);

void apply_colors(FrameReader& r) {
  const auto kind = static_cast<WireMsg>(r.read_u8());
  if (kind == WireMsg::kColorRec) {
    const std::int64_t v = r.read_id();
    const std::int32_t c = r.read_color();
    on_color(v, c);
  }
  on_done(r.done());
}
