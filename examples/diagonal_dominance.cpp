// Example: permuting large entries to the diagonal of a sparse matrix —
// the classic matching application the paper's introduction leads with
// ("maximizing diagonal dominance in sparse linear solvers", Duff & Koster).
//
// We build a random sparse matrix whose diagonal is weak, compute a
// maximum-weight matching on its bipartite representation (both the exact
// solver and the paper's half-approximation), derive a row permutation from
// the matching, and report how much the diagonal product improves.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/pmc.hpp"

namespace {

using namespace pmc;

/// Product-of-|diagonal| quality measure (log10 scale, ignoring zeros).
double log_diagonal_product(const SparseMatrix& m,
                            const std::vector<VertexId>& row_of) {
  // row_of[i] = original row placed at row i after permutation; entry (r, c)
  // lands on the diagonal iff row_of[c] == r.
  double log_prod = 0.0;
  VertexId nonzero_diag = 0;
  for (EdgeId k = 0; k < m.num_entries(); ++k) {
    const VertexId r = m.row_index[static_cast<std::size_t>(k)];
    const VertexId c = m.col_index[static_cast<std::size_t>(k)];
    if (row_of[static_cast<std::size_t>(c)] == r) {
      const double v = std::abs(m.values[static_cast<std::size_t>(k)]);
      if (v > 0) {
        log_prod += std::log10(v);
        ++nonzero_diag;
      }
    }
  }
  std::cout << "    structurally nonzero diagonal entries: " << nonzero_diag
            << " / " << m.rows << "\n";
  return log_prod;
}

std::vector<VertexId> permutation_from_matching(const SparseMatrix& m,
                                                const Matching& match) {
  // match.mate[row r] = m.rows + column c  =>  place row r at position c.
  std::vector<VertexId> row_of(static_cast<std::size_t>(m.cols), kNoVertex);
  std::vector<bool> used_row(static_cast<std::size_t>(m.rows), false);
  for (VertexId r = 0; r < m.rows; ++r) {
    const VertexId mate = match.mate[static_cast<std::size_t>(r)];
    if (mate != kNoVertex) {
      row_of[static_cast<std::size_t>(mate - m.rows)] = r;
      used_row[static_cast<std::size_t>(r)] = true;
    }
  }
  // Unmatched columns get the remaining rows arbitrarily.
  VertexId next = 0;
  for (auto& r : row_of) {
    if (r != kNoVertex) continue;
    while (next < m.rows && used_row[static_cast<std::size_t>(next)]) ++next;
    if (next < m.rows) r = next++;
  }
  return row_of;
}

}  // namespace

int main() {
  using namespace pmc;

  // A square sparse matrix with strong off-diagonal entries: the identity
  // permutation has a poor diagonal.
  const VertexId n = 2000;
  Rng rng(7);
  SparseMatrix m;
  m.rows = n;
  m.cols = n;
  for (VertexId r = 0; r < n; ++r) {
    // Weak diagonal entry.
    m.row_index.push_back(r);
    m.col_index.push_back(r);
    m.values.push_back(rng.uniform_double(1e-4, 1e-2));
    // A few strong off-diagonal entries.
    for (int k = 0; k < 4; ++k) {
      const VertexId c = rng.uniform_int(0, n - 1);
      if (c == r) continue;
      m.row_index.push_back(r);
      m.col_index.push_back(c);
      m.values.push_back(rng.uniform_double(0.5, 10.0));
    }
  }

  BipartiteInfo info;
  const Graph g = matrix_to_bipartite(m, info);
  std::cout << "matrix: " << n << " x " << n << ", nnz=" << m.num_entries()
            << "\n\n";

  std::vector<VertexId> identity(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
  std::cout << "identity permutation:\n";
  const double before = log_diagonal_product(m, identity);
  std::cout << "    log10(prod |a_ii|) = " << before << "\n\n";

  std::cout << "half-approximation matching permutation:\n";
  const Matching approx = locally_dominant_matching(g);
  const double after_approx =
      log_diagonal_product(m, permutation_from_matching(m, approx));
  std::cout << "    log10(prod |a_ii|) = " << after_approx << "\n\n";

  std::cout << "exact maximum-weight matching permutation:\n";
  const Matching exact = exact_max_weight_bipartite_matching(g, info);
  const double after_exact =
      log_diagonal_product(m, permutation_from_matching(m, exact));
  std::cout << "    log10(prod |a_ii|) = " << after_exact << "\n\n";

  std::cout << "improvement (approx): " << after_approx - before
            << " orders of magnitude\n"
            << "gap to exact:         " << after_exact - after_approx
            << " orders of magnitude\n";
  return after_approx > before ? 0 : 1;
}
