// Tests for the benchmark-harness helpers (scaling series, ideal laws) and
// the high-level core API.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "support/error.hpp"

namespace pmc {
namespace {

TEST(ScalingSeries, WeakIdealIsConstant) {
  ScalingSeries s("weak");
  s.add({1024, "8k x 8k", 0.05, 0.0});
  s.add({4096, "16k x 16k", 0.055, 0.0});
  s.add({16384, "32k x 32k", 0.06, 0.0});
  const auto ideal = s.ideal_weak();
  EXPECT_DOUBLE_EQ(ideal[0], 0.05);
  EXPECT_DOUBLE_EQ(ideal[2], 0.05);
  EXPECT_NEAR(s.final_efficiency(false), 0.05 / 0.06, 1e-12);
}

TEST(ScalingSeries, StrongIdealHalvesPerDoubling) {
  ScalingSeries s("strong");
  s.add({512, "grid", 2.0, 0.0});
  s.add({1024, "grid", 1.1, 0.0});
  s.add({2048, "grid", 0.7, 0.0});
  const auto ideal = s.ideal_strong();
  EXPECT_DOUBLE_EQ(ideal[0], 2.0);
  EXPECT_DOUBLE_EQ(ideal[1], 1.0);
  EXPECT_DOUBLE_EQ(ideal[2], 0.5);
}

TEST(ScalingSeries, TableRendersAllPoints) {
  ScalingSeries s("title", "colors");
  s.add({2, "a", 1.0, 4.0});
  s.add({4, "b", 0.5, 4.0});
  const TextTable t = s.to_table(/*strong=*/true);
  EXPECT_EQ(t.rows(), 2u);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("colors"), std::string::npos);
}

TEST(ScalingSeries, RejectsEmptyAndBadPoints) {
  ScalingSeries s("x");
  EXPECT_THROW((void)s.ideal_weak(), Error);
  EXPECT_THROW(s.add({0, "bad", 1.0, 0.0}), Error);
}

TEST(CoreApi, MatchAndColorOneCall) {
  const Graph g = grid_2d(12, 12, WeightKind::kUniformRandom, 1);
  const Matching m = match(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
  const Coloring c = color(g);
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(CoreApi, DistributedOneCallWrappers) {
  const Graph g = grid_2d(12, 12, WeightKind::kUniformRandom, 2);
  const auto mr = match_on_ranks(g, 4);
  EXPECT_TRUE(is_valid_matching(g, mr.matching));
  EXPECT_DOUBLE_EQ(matching_weight(g, mr.matching),
                   matching_weight(g, match(g)));
  const auto cr = color_on_ranks(g, 4);
  EXPECT_TRUE(is_proper_coloring(g, cr.coloring));
  EXPECT_THROW((void)match_on_ranks(g, 0), Error);
}

}  // namespace
}  // namespace pmc
