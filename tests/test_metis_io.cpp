// Tests for METIS .graph format I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/metis_io.hpp"
#include "support/error.hpp"

namespace pmc {
namespace {

TEST(MetisIo, ParsesUnweightedGraph) {
  // Triangle plus a pendant vertex: 4 vertices, 4 edges.
  std::istringstream in(
      "% a comment\n"
      "4 4\n"
      "2 3\n"
      "1 3 4\n"
      "1 2\n"
      "2\n");
  const Graph g = read_metis_graph(in);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_weights());
}

TEST(MetisIo, ParsesEdgeWeightedGraph) {
  std::istringstream in(
      "3 2 1\n"
      "2 5 3 7\n"
      "1 5\n"
      "1 7\n");
  const Graph g = read_metis_graph(in);
  EXPECT_TRUE(g.has_weights());
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 7.0);
}

TEST(MetisIo, HandlesIsolatedVertices) {
  // Vertex 3 is isolated: its adjacency line is empty.
  std::istringstream in(
      "3 1\n"
      "2\n"
      "1\n"
      "\n");
  const Graph g = read_metis_graph(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(MetisIo, RejectsMalformedInputs) {
  {
    std::istringstream in("");  // empty
    EXPECT_THROW((void)read_metis_graph(in), Error);
  }
  {
    std::istringstream in("2 1 10\n2\n1\n");  // vertex weights unsupported
    EXPECT_THROW((void)read_metis_graph(in), Error);
  }
  {
    std::istringstream in("2 1\n2\n5\n");  // neighbor out of range
    EXPECT_THROW((void)read_metis_graph(in), Error);
  }
  {
    std::istringstream in("2 1\n1\n1\n");  // self-loop
    EXPECT_THROW((void)read_metis_graph(in), Error);
  }
  {
    std::istringstream in("2 2\n2\n1\n");  // header declares 2 edges, 1 given
    EXPECT_THROW((void)read_metis_graph(in), Error);
  }
  {
    std::istringstream in("3 1\n2\n1\n");  // missing adjacency line
    EXPECT_THROW((void)read_metis_graph(in), Error);
  }
}

TEST(MetisIo, RoundTripUnweighted) {
  const Graph g = erdos_renyi(60, 150, WeightKind::kUnit, 3);
  // kUnit still records weights; write as unweighted by stripping them via
  // the square-free path: regenerate as pattern through METIS text.
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in(out.str());
  const Graph h = read_metis_graph(in);
  h.validate();
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MetisIo, RoundTripWeighted) {
  const Graph g = erdos_renyi(40, 100, WeightKind::kIntegral, 4);
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in(out.str());
  const Graph h = read_metis_graph(in);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      EXPECT_DOUBLE_EQ(h.edge_weight(v, u), g.edge_weight(v, u));
    }
  }
}

TEST(MetisIo, FileNotFoundThrows) {
  EXPECT_THROW((void)read_metis_graph_file("/nonexistent/x.graph"), Error);
}

}  // namespace
}  // namespace pmc
