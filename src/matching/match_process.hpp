// The per-rank state machine of the distributed half-approximate matching
// (the paper's §3.2/§3.3 protocol), factored out of matching/parallel.cpp so
// extensions can derive from it.
//
// The base class implements the one-shot protocol exactly: REQUEST /
// SUCCEEDED / FAILED records, bundled or eager, over the event engine.
// Derived classes (e.g. the service-mode incremental re-matcher) add record
// types by overriding handle_record() and reuse the candidate/cascade
// machinery through the protected surface. The base behavior is
// byte-identical to the pre-refactor implementation — the determinism pins
// in tests/test_determinism_regression.cpp hold across the move.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "matching/parallel.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/event_engine.hpp"
#include "runtime/fabric.hpp"
#include "runtime/serialize.hpp"

namespace pmc {

/// One rank's matching state machine (see matching/parallel.hpp for the
/// protocol description).
class MatchProcess : public Process {
 public:
  MatchProcess(const LocalGraph& lg, const DistMatchingOptions& options);

  void start(EventContext& ctx) override;
  void handle(EventContext& ctx, Rank src,
              std::span<const std::byte> payload) override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] std::string debug_state() const override;

  /// Extracts the rank's matched pairs as (owned global id, mate global id).
  void collect(std::vector<VertexId>& global_mate) const;

  [[nodiscard]] int activations() const noexcept { return activations_; }

 protected:
  enum class RecordType : std::uint8_t {
    kRequest = 1,    // (sender vertex, target vertex)
    kSucceeded = 2,  // (matched vertex, its mate)
    kFailed = 3,     // (failed vertex)
  };

  enum class VState : std::uint8_t {
    kUndecided = 0,
    kMatched = 1,
    kFailed = 2
  };

  /// Decodes and dispatches one record (the reader is positioned just past
  /// the type byte). The base implementation handles the three one-shot
  /// record types and fails on anything else; derived classes intercept
  /// their own types and delegate the rest here.
  virtual void handle_record(EventContext& ctx, FrameReader& reader,
                             std::uint8_t type);

  // ---- candidate maintenance ---------------------------------------------

  [[nodiscard]] bool target_dead(VertexId t) const;
  void recompute_candidate(EventContext& ctx, VertexId v);

  // ---- state transitions --------------------------------------------------

  void fail_vertex(EventContext& ctx, VertexId v);
  void match_local(EventContext& ctx, VertexId a, VertexId b);
  void match_cross(EventContext& ctx, VertexId v, VertexId ghost);
  void notify_decided(EventContext& ctx, VertexId x, RecordType type,
                      VertexId mate_global, Rank exclude_rank);
  void ghost_died(VertexId ghost, VertexId skip);
  void process_pending(EventContext& ctx);

  // ---- message handling ---------------------------------------------------

  void handle_request(EventContext& ctx, VertexId u_global, VertexId v_global);
  void handle_succeeded(EventContext& ctx, VertexId x_global,
                        VertexId mate_global);
  void handle_failed(EventContext& ctx, VertexId x_global);
  [[nodiscard]] EdgeId find_arc(VertexId v, VertexId t) const;

  // ---- outgoing records ---------------------------------------------------

  void enqueue_record(EventContext& ctx, Rank dst, RecordType type, VertexId a,
                      VertexId b);
  static void encode(FrameWriter& w, RecordType type, VertexId a, VertexId b);
  void flush(EventContext& ctx);

  /// Sorts vertex v's arcs by (weight desc, neighbor global id asc) — the
  /// paper's tie-breaking rule — into arc_order_ and charges deg(v).
  void sort_arcs(EventContext& ctx, VertexId v);
  /// Builds the ghost -> (owned vertex, arc) incidence lists (uncharged
  /// setup, like the CSR itself).
  void build_ghost_incidence();

  const LocalGraph& lg_;
  Bundler bundler_;
  std::vector<VState> state_;
  std::vector<VertexId> mate_;  // local ids
  std::vector<VertexId> cand_;  // local ids
  std::vector<EdgeId> ptr_;     // position within sorted arc order
  std::vector<bool> initialized_;
  std::vector<bool> ghost_dead_;
  std::vector<bool> arc_requested_;
  std::vector<std::uint32_t> arc_order_;  // per-vertex-relative positions
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> ghost_incidence_;
  std::deque<VertexId> pending_;
  std::vector<Rank> scratch_ranks_;
  VertexId undecided_ = 0;
  int activations_ = 0;
};

}  // namespace pmc
