// Fig 5.4 — Strong scaling of the coloring algorithm on the adjacency graph
// of a circuit-simulation matrix with a *poor* partition.
//
// Paper setup: adjacency graph of G3_circuit (1.5M vertices, 3M edges),
// partitioned with ParMETIS (~40% edge cut at 4,096 parts!), 2 to 4,096
// processors. Observed: still-good but visibly degraded scaling relative to
// Fig 5.3 — the cost of the much larger cut.
//
// This reproduction uses a circuit-like adjacency graph at reduced scale
// (default 60k vertices, --vertices; paper: 1.5M) and the ParMETIS-like
// multilevel preset (shallow coarsening + perturbation) to reach a
// comparable cut regime.
#include "bench_common.hpp"

#include <iostream>

namespace pmc::bench {
namespace {

int run(int argc, const char** argv) {
  Options opts;
  opts.add("vertices", "150000", "graph size (paper: 1.5M)");
  opts.add("ranks", "2,8,32,128,512,2048,4096",
           "comma-separated processor counts");
  opts.add("csv", "", "optional CSV output path");
  (void)opts.parse(argc, argv);
  const auto n = static_cast<VertexId>(opts.get_int("vertices"));

  std::vector<int> rank_list;
  {
    std::istringstream iss(opts.get("ranks"));
    std::string tok;
    while (std::getline(iss, tok, ',')) rank_list.push_back(std::stoi(tok));
  }

  banner("Fig 5.4 — coloring strong scaling, circuit-simulation adjacency "
         "graph (ParMETIS-like partition)",
         "good but visibly degraded scaling (vs Fig 5.3) due to ~40% edge "
         "cut; max/min degree 6 and 2");

  // Adjacency graph of a circuit matrix: bounded degree [2, 6] like
  // G3_circuit.
  const Graph g = circuit_like(n, n * 2, 6, WeightKind::kUnit, 54);
  std::cout << "input: |V|=" << g.num_vertices() << " |E|=" << g.num_edges()
            << " degree range [" << g.min_degree() << ", " << g.max_degree()
            << "]\n\n";

  const Coloring seq = greedy_coloring(g);
  CsvSink csv(opts.get("csv"), {"ranks", "cut_fraction", "sim_seconds",
                                "messages", "bytes", "colors", "rounds"});
  ScalingSeries series("Fig 5.4: coloring, strong scaling", "colors");

  double max_cut = 0.0;
  for (const int ranks : rank_list) {
    const Partition p = multilevel_partition(
        g, static_cast<Rank>(ranks), MultilevelConfig::parmetis_like(7));
    const auto metrics = compute_metrics(g, p);
    max_cut = std::max(max_cut, metrics.cut_fraction);

    const auto res = color_distributed(g, p, DistColoringOptions::improved());
    PMC_CHECK(is_proper_coloring(g, res.coloring), "improper coloring");
    series.add({ranks, "", res.run.sim_seconds,
                static_cast<double>(res.coloring.num_colors())});
    csv.row({std::to_string(ranks), std::to_string(metrics.cut_fraction),
             std::to_string(res.run.sim_seconds),
             std::to_string(res.run.comm.messages),
             std::to_string(res.run.comm.bytes),
             std::to_string(res.coloring.num_colors()),
             std::to_string(res.rounds)});
  }

  series.to_table(/*strong=*/true).print(std::cout);
  std::cout << "max edge cut over the sweep: " << cell_pct(max_cut, 1)
            << " (paper: ~40% at 4,096 parts)\n"
            << "sequential greedy colors: " << seq.num_colors()
            << " (paper: parallel color count stays near the serial one)\n";
  return 0;
}

}  // namespace
}  // namespace pmc::bench

int main(int argc, const char** argv) {
  try {
    return pmc::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_fig_5_4: " << e.what() << '\n';
    return 1;
  }
}
