// Ablation A7 — shared-memory execution backend (thread sweep).
//
// Runs the same matching / coloring / distance-2 workloads with the rank
// callbacks on 1, 2, 4 and 8 pool threads and reports modelled time and
// wall-clock time side by side. The modelled results are REQUIRED to be
// bit-identical across the sweep (that is the backend's contract — the
// thread count may only change how long the simulation takes to run, never
// what it computes); the wall-clock column is where the speedup shows.
//
// Wall-clock speedup tracks the host's real core count. The summary JSON
// records hardware_concurrency so a 1-core CI box reporting ~1x is
// distinguishable from a backend regression.
#include "bench_common.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>

namespace pmc::bench {
namespace {

struct Sample {
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;  // min over reps
  std::int64_t messages = 0;
};

template <typename Run>
Sample measure(int reps, const Run& run) {
  Sample s;
  s.wall_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult r = run();
    s.sim_seconds = r.sim_seconds;
    s.messages = r.comm.messages;
    s.wall_seconds = std::min(s.wall_seconds, r.wall_seconds);
  }
  return s;
}

int run(int argc, const char** argv) {
  Options opts;
  opts.add("grid", "192", "grid side length (5-point stencil workloads)");
  opts.add("ranks", "64", "simulated processor count");
  // The sweep intentionally bypasses Options::get_threads: oversubscribing
  // (8 threads on a smaller box) is part of what the ablation measures.
  opts.add("threads", "1,2,4,8", "comma-separated pool sizes to sweep");
  opts.add("reps", "3", "repetitions per point (min wall time is reported)");
  opts.add("csv", "", "optional CSV output path");
  opts.add("json", "BENCH_threads.json", "summary JSON path (empty = none)");
  (void)opts.parse(argc, argv);
  const auto side = static_cast<VertexId>(opts.get_int("grid"));
  const auto ranks = static_cast<Rank>(opts.get_int("ranks"));
  const int reps = std::max(1, static_cast<int>(opts.get_int("reps")));

  std::vector<int> thread_list;
  {
    std::istringstream iss(opts.get("threads"));
    std::string tok;
    while (std::getline(iss, tok, ',')) {
      const int t = std::stoi(tok);
      PMC_REQUIRE(t >= 1, "--threads entries must be >= 1, got " << t);
      thread_list.push_back(t);
    }
  }
  PMC_REQUIRE(!thread_list.empty() && thread_list.front() == 1,
              "--threads must start with 1 (the sequential baseline)");

  banner("Ablation A7 — execution backend thread sweep",
         "the backend changes wall-clock time only: modelled time, comm "
         "stats and results are bit-identical at every thread count");

  const Graph g = grid_2d(side, side, WeightKind::kUniformRandom, 61);
  Rank pr = 0, pc = 0;
  factor_processor_grid(ranks, pr, pc);
  const Partition p = grid_2d_partition(side, side, pr, pc);
  const DistGraph dist = DistGraph::build(g, p);

  TextTable table({"workload", "threads", "sim (s)", "wall (s)", "speedup"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});
  table.set_title("wall-clock thread sweep (sim column must not move)");
  CsvSink csv(opts.get("csv"), {"workload", "threads", "sim_seconds",
                                "wall_seconds", "speedup", "messages"});

  struct Workload {
    std::string name;
    std::function<RunResult(int)> run;  // threads -> result
  };
  const std::vector<Workload> workloads = {
      {"matching",
       [&](int threads) {
         DistMatchingOptions o;
         o.exec.threads = threads;
         return match_distributed(dist, o).run;
       }},
      {"coloring-sync",
       [&](int threads) {
         auto o = DistColoringOptions::improved();
         o.superstep_mode = SuperstepMode::kSync;
         o.exec.threads = threads;
         return color_distributed(dist, o).run;
       }},
      {"distance2-sync",
       [&](int threads) {
         DistColoringOptions o;
         o.superstep_mode = SuperstepMode::kSync;
         o.exec.threads = threads;
         return color_distance2_distributed_native(g, p, o).run;
       }},
  };

  std::ostringstream json_rows;
  bool first_row = true;
  for (const auto& w : workloads) {
    Sample base;
    for (const int threads : thread_list) {
      const Sample s =
          measure(reps, [&] { return w.run(threads); });
      if (threads == 1) {
        base = s;
      } else {
        // Exact comparison on purpose: any drift means the deferred-lane
        // merge diverged from sequential execution.
        PMC_CHECK(s.sim_seconds == base.sim_seconds,
                  w.name << ": modelled time moved at threads=" << threads);
        PMC_CHECK(s.messages == base.messages,
                  w.name << ": message count moved at threads=" << threads);
      }
      const double speedup = base.wall_seconds / s.wall_seconds;
      table.add_row({w.name, cell_count(threads), cell_sci(s.sim_seconds),
                     cell_sci(s.wall_seconds), cell(speedup, 2) + "x"});
      csv.row({w.name, std::to_string(threads),
               std::to_string(s.sim_seconds),
               std::to_string(s.wall_seconds), std::to_string(speedup),
               std::to_string(s.messages)});
      json_rows << (first_row ? "" : ",") << "\n    {\"workload\": \""
                << w.name << "\", \"threads\": " << threads
                << ", \"sim_seconds\": " << s.sim_seconds
                << ", \"wall_seconds\": " << s.wall_seconds
                << ", \"speedup\": " << speedup << "}";
      first_row = false;
    }
  }
  table.print(std::cout);

  const unsigned hw = std::thread::hardware_concurrency();
  if (const std::string json_path = opts.get("json"); !json_path.empty()) {
    std::ofstream out(json_path);
    PMC_REQUIRE(out.good(), "cannot open " << json_path);
    out << "{\n  \"bench\": \"ablation_threads\",\n  \"grid\": " << side
        << ",\n  \"ranks\": " << ranks
        << ",\n  \"reps\": " << reps
        << ",\n  \"hardware_concurrency\": " << hw
        << ",\n  \"rows\": [" << json_rows.str() << "\n  ]\n}\n";
    std::cout << "summary written to " << json_path << '\n';
  }
  std::cout << "(host advertises " << hw
            << " hardware thread(s); wall-clock speedup is bounded by real "
               "cores, the sim column by design must not move)\n";
  return 0;
}

}  // namespace
}  // namespace pmc::bench

int main(int argc, const char** argv) {
  try {
    return pmc::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_ablation_threads: " << e.what() << '\n';
    return 1;
  }
}
