// Exact maximum-weight bipartite matching — the reference against which the
// half-approximation's quality is measured (paper Table 1.1).
//
// Successive shortest augmenting paths on the residual graph with SPFA
// (Bellman-Ford with a queue): each iteration finds the most profitable
// augmenting path and stops when no augmenting path increases the total
// weight. Exact for any non-negative weights; intended for the moderate
// problem sizes of the quality study, not for billion-edge graphs.
#pragma once

#include "graph/csr_graph.hpp"
#include "matching/matching.hpp"

namespace pmc {

/// Computes a maximum-weight matching of a bipartite graph. `info` declares
/// the two sides (as produced by matrix_to_bipartite / random_bipartite).
/// Throws if g has an edge inside one side.
[[nodiscard]] Matching exact_max_weight_bipartite_matching(
    const Graph& g, const BipartiteInfo& info);

}  // namespace pmc
