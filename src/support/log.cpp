#include "support/log.hpp"

#include <iostream>

namespace pmc {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }

LogLevel log_level() noexcept { return g_level; }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[pmc " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace pmc
