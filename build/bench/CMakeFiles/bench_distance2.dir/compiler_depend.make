# Empty compiler generated dependencies file for bench_distance2.
# This may be replaced when dependencies are built.
