#include "matching/match_process.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace pmc {

MatchProcess::MatchProcess(const LocalGraph& lg,
                           const DistMatchingOptions& options)
    : lg_(lg),
      bundler_(options.bundled ? BundleMode::kBundled : BundleMode::kEager,
               options.bundle_flush_bytes, options.codec) {}

void MatchProcess::sort_arcs(EventContext& ctx, VertexId v) {
  const EdgeId b = lg_.offset_begin(v);
  const EdgeId e = lg_.offset_end(v);
  for (EdgeId a = b; a < e; ++a) {
    arc_order_[static_cast<std::size_t>(a)] = static_cast<std::uint32_t>(a - b);
  }
  std::sort(arc_order_.begin() + b, arc_order_.begin() + e,
            [this, b](std::uint32_t x, std::uint32_t y) {
              const EdgeId ax = b + x;
              const EdgeId ay = b + y;
              const Weight wx = lg_.arc_weight(ax);
              const Weight wy = lg_.arc_weight(ay);
              if (wx != wy) return wx > wy;
              return lg_.global_id(lg_.arc_target(ax)) <
                     lg_.global_id(lg_.arc_target(ay));
            });
  ctx.charge(static_cast<double>(e - b));
}

void MatchProcess::build_ghost_incidence() {
  ghost_incidence_.resize(static_cast<std::size_t>(lg_.num_ghosts()));
  for (VertexId v = 0; v < lg_.num_owned(); ++v) {
    for (EdgeId a = lg_.offset_begin(v); a < lg_.offset_end(v); ++a) {
      const VertexId t = lg_.arc_target(a);
      if (lg_.is_ghost(t)) {
        ghost_incidence_[static_cast<std::size_t>(t - lg_.num_owned())]
            .emplace_back(v, a);
      }
    }
  }
}

void MatchProcess::start(EventContext& ctx) {
  ctx.set_phase(WorkPhase::kInterior);
  const VertexId n = lg_.num_owned();
  state_.assign(static_cast<std::size_t>(n), VState::kUndecided);
  mate_.assign(static_cast<std::size_t>(n), kNoVertex);
  cand_.assign(static_cast<std::size_t>(n), kNoVertex);
  ptr_.assign(static_cast<std::size_t>(n), 0);
  initialized_.assign(static_cast<std::size_t>(n), false);
  ghost_dead_.assign(static_cast<std::size_t>(lg_.num_ghosts()), false);
  arc_requested_.assign(static_cast<std::size_t>(
                            n > 0 ? lg_.offset_end(n - 1) : 0),
                        false);
  undecided_ = n;

  // Per-vertex arc order: weight descending, ties by smallest global label
  // of the neighbor (the paper's tie-breaking rule). Positions are stored
  // relative to the vertex's arc range to keep them 32-bit.
  arc_order_.resize(arc_requested_.size());
  for (VertexId v = 0; v < n; ++v) {
    sort_arcs(ctx, v);
  }

  // Ghost incidence: for each ghost, the (owned vertex, arc) pairs that
  // reference it — lets a ghost's death cascade without scanning.
  build_ghost_incidence();

  // Initial candidates; reciprocal local pairs match as soon as the second
  // endpoint initializes, and cascades run through the pending queue
  // (the paper's inner loop over interior work).
  for (VertexId v = 0; v < n; ++v) {
    if (state_[static_cast<std::size_t>(v)] == VState::kUndecided &&
        !initialized_[static_cast<std::size_t>(v)]) {
      recompute_candidate(ctx, v);
      process_pending(ctx);
    }
  }
  flush(ctx);
}

void MatchProcess::handle(EventContext& ctx, Rank src,
                          std::span<const std::byte> payload) {
  (void)src;
  ++activations_;
  // Trace attribution: this rank's sends now belong to its activation
  // depth (the matching analogue of a round), and record handling plus
  // the cascades it triggers count as boundary work.
  ctx.set_round(activations_);
  ctx.set_phase(WorkPhase::kBoundary);
  FrameReader reader(payload);
  PMC_CHECK(reader.valid(), "undetected bad frame reached the matching: "
                                << reader.error());
  for (std::int64_t i = 0; i < reader.records(); ++i) {
    const std::uint8_t type = reader.read_u8();
    ctx.charge(1.0);
    handle_record(ctx, reader, type);
    process_pending(ctx);
  }
  PMC_CHECK(reader.done(), "trailing garbage after the last matching record");
  flush(ctx);
}

void MatchProcess::handle_record(EventContext& ctx, FrameReader& reader,
                                 std::uint8_t type) {
  switch (static_cast<RecordType>(type)) {
    case RecordType::kRequest: {
      const VertexId u_global = reader.read_id();
      const VertexId v_global = reader.read_id_rel();
      handle_request(ctx, u_global, v_global);
      break;
    }
    case RecordType::kSucceeded: {
      const VertexId x_global = reader.read_id();
      const VertexId mate_global = reader.read_id_rel();
      handle_succeeded(ctx, x_global, mate_global);
      break;
    }
    case RecordType::kFailed: {
      const VertexId x_global = reader.read_id();
      handle_failed(ctx, x_global);
      break;
    }
    default:
      PMC_FAIL("unknown matching record type "
               << static_cast<int>(type) << " on rank " << lg_.rank());
  }
}

bool MatchProcess::done() const { return undecided_ == 0; }

std::string MatchProcess::debug_state() const {
  std::ostringstream oss;
  oss << "undecided " << undecided_ << "/" << lg_.num_owned();
  return oss.str();
}

void MatchProcess::collect(std::vector<VertexId>& global_mate) const {
  for (VertexId v = 0; v < lg_.num_owned(); ++v) {
    if (state_[static_cast<std::size_t>(v)] == VState::kMatched) {
      global_mate[static_cast<std::size_t>(lg_.global_id(v))] =
          lg_.global_id(mate_[static_cast<std::size_t>(v)]);
    }
  }
}

// ---- candidate maintenance -------------------------------------------

bool MatchProcess::target_dead(VertexId t) const {
  if (lg_.is_ghost(t)) {
    return ghost_dead_[static_cast<std::size_t>(t - lg_.num_owned())];
  }
  return state_[static_cast<std::size_t>(t)] != VState::kUndecided;
}

void MatchProcess::recompute_candidate(EventContext& ctx, VertexId v) {
  initialized_[static_cast<std::size_t>(v)] = true;
  const EdgeId b = lg_.offset_begin(v);
  const EdgeId deg = lg_.offset_end(v) - b;
  auto& p = ptr_[static_cast<std::size_t>(v)];
  while (p < deg) {
    const VertexId t =
        lg_.arc_target(b + arc_order_[static_cast<std::size_t>(b + p)]);
    if (!target_dead(t)) break;
    ++p;
    ctx.charge(1.0);
  }
  if (p == deg) {
    fail_vertex(ctx, v);
    return;
  }
  const EdgeId arc = b + arc_order_[static_cast<std::size_t>(b + p)];
  const VertexId c = lg_.arc_target(arc);
  cand_[static_cast<std::size_t>(v)] = c;
  if (!lg_.is_ghost(c)) {
    if (initialized_[static_cast<std::size_t>(c)] &&
        state_[static_cast<std::size_t>(c)] == VState::kUndecided &&
        cand_[static_cast<std::size_t>(c)] == v) {
      match_local(ctx, v, c);
    }
    return;
  }
  // Cross candidate: signal the matching preference (paper §3.2), then
  // complete immediately if the other side already requested us (R-set).
  enqueue_record(ctx, lg_.ghost_owner(c), RecordType::kRequest,
                 lg_.global_id(v), lg_.global_id(c));
  if (arc_requested_[static_cast<std::size_t>(arc)]) {
    match_cross(ctx, v, c);
  }
}

// ---- state transitions -------------------------------------------------

void MatchProcess::fail_vertex(EventContext& ctx, VertexId v) {
  state_[static_cast<std::size_t>(v)] = VState::kFailed;
  cand_[static_cast<std::size_t>(v)] = kNoVertex;
  --undecided_;
  notify_decided(ctx, v, RecordType::kFailed, kNoVertex, kNoRank);
}

void MatchProcess::match_local(EventContext& ctx, VertexId a, VertexId b) {
  state_[static_cast<std::size_t>(a)] = VState::kMatched;
  state_[static_cast<std::size_t>(b)] = VState::kMatched;
  mate_[static_cast<std::size_t>(a)] = b;
  mate_[static_cast<std::size_t>(b)] = a;
  undecided_ -= 2;
  notify_decided(ctx, a, RecordType::kSucceeded, lg_.global_id(b), kNoRank);
  notify_decided(ctx, b, RecordType::kSucceeded, lg_.global_id(a), kNoRank);
}

void MatchProcess::match_cross(EventContext& ctx, VertexId v, VertexId ghost) {
  state_[static_cast<std::size_t>(v)] = VState::kMatched;
  mate_[static_cast<std::size_t>(v)] = ghost;
  --undecided_;
  // The ghost is now matched (to us): it is dead for every other owned
  // vertex. Its owner reaches the same conclusion from our REQUEST, so no
  // SUCCEEDED needs to travel to the mate's rank.
  ghost_died(ghost, /*skip=*/v);
  notify_decided(ctx, v, RecordType::kSucceeded, lg_.global_id(ghost),
                 lg_.ghost_owner(ghost));
}

void MatchProcess::notify_decided(EventContext& ctx, VertexId x,
                                  RecordType type, VertexId mate_global,
                                  Rank exclude_rank) {
  scratch_ranks_.clear();
  for (EdgeId a = lg_.offset_begin(x); a < lg_.offset_end(x); ++a) {
    ctx.charge(1.0);
    const VertexId t = lg_.arc_target(a);
    if (lg_.is_ghost(t)) {
      if (ghost_dead_[static_cast<std::size_t>(t - lg_.num_owned())]) {
        continue;
      }
      const Rank r = lg_.ghost_owner(t);
      if (r != exclude_rank) scratch_ranks_.push_back(r);
    } else if (state_[static_cast<std::size_t>(t)] == VState::kUndecided &&
               initialized_[static_cast<std::size_t>(t)] &&
               cand_[static_cast<std::size_t>(t)] == x) {
      pending_.push_back(t);
    }
  }
  std::sort(scratch_ranks_.begin(), scratch_ranks_.end());
  scratch_ranks_.erase(
      std::unique(scratch_ranks_.begin(), scratch_ranks_.end()),
      scratch_ranks_.end());
  for (Rank r : scratch_ranks_) {
    enqueue_record(ctx, r, type, lg_.global_id(x), mate_global);
  }
}

void MatchProcess::ghost_died(VertexId ghost, VertexId skip) {
  const auto gidx = static_cast<std::size_t>(ghost - lg_.num_owned());
  if (ghost_dead_[gidx]) return;
  ghost_dead_[gidx] = true;
  for (const auto& [w, arc] :
       ghost_incidence_[static_cast<std::size_t>(ghost - lg_.num_owned())]) {
    (void)arc;
    if (w == skip) continue;
    if (state_[static_cast<std::size_t>(w)] == VState::kUndecided &&
        initialized_[static_cast<std::size_t>(w)] &&
        cand_[static_cast<std::size_t>(w)] == ghost) {
      pending_.push_back(w);
    }
  }
}

void MatchProcess::process_pending(EventContext& ctx) {
  while (!pending_.empty()) {
    const VertexId v = pending_.front();
    pending_.pop_front();
    if (state_[static_cast<std::size_t>(v)] != VState::kUndecided) continue;
    // Only recompute when the current candidate is actually dead; the
    // vertex may have been re-queued after already moving on.
    const VertexId c = cand_[static_cast<std::size_t>(v)];
    if (c != kNoVertex && !target_dead(c)) continue;
    recompute_candidate(ctx, v);
  }
}

// ---- message handling ---------------------------------------------------

void MatchProcess::handle_request(EventContext& ctx, VertexId u_global,
                                  VertexId v_global) {
  const VertexId gu = lg_.local_id(u_global);
  const VertexId v = lg_.local_id(v_global);
  PMC_CHECK(gu != kNoVertex && lg_.is_ghost(gu),
            "REQUEST names unknown ghost " << u_global);
  PMC_CHECK(v != kNoVertex && !lg_.is_ghost(v),
            "REQUEST targets non-owned vertex " << v_global);
  // Record the incoming preference on the (v, gu) arc — the R(v) set.
  const EdgeId arc = find_arc(v, gu);
  arc_requested_[static_cast<std::size_t>(arc)] = true;
  if (state_[static_cast<std::size_t>(v)] != VState::kUndecided) {
    // v already decided; the sender learns from our earlier notification.
    return;
  }
  if (initialized_[static_cast<std::size_t>(v)] &&
      cand_[static_cast<std::size_t>(v)] == gu) {
    match_cross(ctx, v, gu);  // handshake: two symmetric REQUESTs
  }
}

void MatchProcess::handle_succeeded(EventContext& ctx, VertexId x_global,
                                    VertexId mate_global) {
  (void)ctx;
  const VertexId gx = lg_.local_id(x_global);
  PMC_CHECK(gx != kNoVertex && lg_.is_ghost(gx),
            "SUCCEEDED names unknown ghost " << x_global);
  const VertexId mate_local = lg_.local_id(mate_global);
  // The mate can never be one of our owned vertices: the owner excludes
  // the mate's rank from SUCCEEDED (the handshake covers it).
  PMC_CHECK(mate_local == kNoVertex || lg_.is_ghost(mate_local),
            "unexpected SUCCEEDED for handshake mate " << mate_global);
  ghost_died(gx, kNoVertex);
}

void MatchProcess::handle_failed(EventContext& ctx, VertexId x_global) {
  (void)ctx;
  const VertexId gx = lg_.local_id(x_global);
  PMC_CHECK(gx != kNoVertex && lg_.is_ghost(gx),
            "FAILED names unknown ghost " << x_global);
  ghost_died(gx, kNoVertex);
}

EdgeId MatchProcess::find_arc(VertexId v, VertexId t) const {
  for (EdgeId a = lg_.offset_begin(v); a < lg_.offset_end(v); ++a) {
    if (lg_.arc_target(a) == t) return a;
  }
  PMC_FAIL("arc (" << v << " -> " << t << ") not found on rank "
                   << lg_.rank());
}

// ---- outgoing records ---------------------------------------------------
// Aggregation is the runtime Bundler's job: bundled mode stages records
// per destination until flush() (one message per neighbor rank per
// activation, the paper's §3.3 bundling); eager mode sends each record on
// its own (the unbundled ablation).

void MatchProcess::enqueue_record(EventContext& ctx, Rank dst, RecordType type,
                                  VertexId a, VertexId b) {
  bundler_.add(
      dst, [&](FrameWriter& w) { encode(w, type, a, b); },
      [&](Rank d, std::vector<std::byte> payload, std::int64_t records) {
        ctx.send(d, std::move(payload), records);
      });
}

void MatchProcess::encode(FrameWriter& w, RecordType type, VertexId a,
                          VertexId b) {
  w.begin_record();
  w.put_u8(static_cast<std::uint8_t>(type));
  // Spelled out per kind so each record layout is checkable against its
  // decoder in handle_record; kFailed carries no partner id.
  switch (type) {
    case RecordType::kRequest:
    case RecordType::kSucceeded:
      w.put_id(a);
      // b is a graph neighbor of a (REQUEST target / mate), so the relative
      // encoding stays short under the compact codec.
      w.put_id_rel(b);
      break;
    case RecordType::kFailed:
      w.put_id(a);
      break;
  }
}

void MatchProcess::flush(EventContext& ctx) {
  bundler_.flush(
      [&](Rank d, std::vector<std::byte> payload, std::int64_t records) {
        ctx.send(d, std::move(payload), records);
      });
}

}  // namespace pmc
