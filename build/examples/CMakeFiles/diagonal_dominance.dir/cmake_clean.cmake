file(REMOVE_RECURSE
  "CMakeFiles/diagonal_dominance.dir/diagonal_dominance.cpp.o"
  "CMakeFiles/diagonal_dominance.dir/diagonal_dominance.cpp.o.d"
  "diagonal_dominance"
  "diagonal_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagonal_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
