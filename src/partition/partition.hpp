// Vertex partitions of a graph across logical processors.
//
// The paper assumes "the input graph is assumed to be partitioned and
// distributed among the available processors in some reasonable way", and
// classifies vertices into interior (all neighbors on the same processor)
// and boundary (at least one neighbor elsewhere). This module provides the
// partition representation, the interior/boundary classification, and the
// quality metrics the paper quotes (edge cut %, boundary fraction, balance).
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/types.hpp"

namespace pmc {

/// Assignment of every vertex to one of `num_parts` logical processors.
class Partition {
 public:
  Partition() = default;

  /// Takes ownership of the per-vertex owner array; every entry must lie in
  /// [0, num_parts).
  Partition(Rank num_parts, std::vector<Rank> owner);

  [[nodiscard]] Rank num_parts() const noexcept { return num_parts_; }

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(owner_.size());
  }

  [[nodiscard]] Rank owner(VertexId v) const {
    return owner_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] const std::vector<Rank>& owners() const noexcept {
    return owner_;
  }

  /// Vertices owned by `part` (computed on demand; O(n)).
  [[nodiscard]] std::vector<VertexId> vertices_of(Rank part) const;

  /// Per-part vertex counts.
  [[nodiscard]] std::vector<VertexId> part_sizes() const;

 private:
  Rank num_parts_ = 0;
  std::vector<Rank> owner_;
};

/// Quality metrics of a partition with respect to a graph.
struct PartitionMetrics {
  Rank num_parts = 0;
  EdgeId edge_cut = 0;          ///< Number of cross edges.
  double cut_fraction = 0.0;    ///< edge_cut / |E|.
  VertexId boundary_vertices = 0;
  double boundary_fraction = 0.0;
  double imbalance = 1.0;       ///< max part size / average part size.

  [[nodiscard]] std::string to_string() const;
};

/// Computes the metrics above in one pass over the arcs.
[[nodiscard]] PartitionMetrics compute_metrics(const Graph& g,
                                               const Partition& p);

/// Per-vertex boundary flags (true iff some neighbor lives on another part).
[[nodiscard]] std::vector<bool> boundary_flags(const Graph& g,
                                               const Partition& p);

}  // namespace pmc
