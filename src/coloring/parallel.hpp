// Distributed-memory speculative greedy coloring — the paper's Section 4
// algorithm (the Bozdağ et al. framework plus the new neighbor-customized
// communication), executed on the simulated BSP runtime.
//
// Each round has a tentative coloring phase (supersteps of size s: color s
// owned vertices with the information available, then exchange boundary
// colors) and a conflict-detection phase (local; the loser of each conflict
// edge — chosen by deterministic per-vertex random priorities — is recolored
// next round). Three communication modes reproduce the paper's comparison:
//
//   * kBroadcastUnion      (FIAB) — every rank sends the union of its
//     superstep's boundary colors to every other rank;
//   * kCustomizedAll       (FIAC) — customized (possibly empty) message to
//     every other rank: less volume, same message count;
//   * kCustomizedNeighbors (NEW)  — customized messages only to neighboring
//     ranks: fewer messages AND less volume. The paper's contribution.
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/coloring.hpp"
#include "coloring/sequential.hpp"
#include "graph/csr_graph.hpp"
#include "partition/partition.hpp"
#include "runtime/comm_stats.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/exec/backend.hpp"
#include "runtime/fabric.hpp"
#include "runtime/machine_model.hpp"

namespace pmc {

/// Who receives a superstep's boundary color updates. The three modes are
/// the fabric's send policies (runtime/fabric.hpp): kBroadcastUnion (FIAB),
/// kCustomizedAll (FIAC), kCustomizedNeighbors (the paper's new algorithm).
using CommMode = SendPolicy;

/// Whether supersteps run with or without a global barrier.
enum class SuperstepMode { kAsync, kSync };

/// Order in which a rank colors its vertices within a round.
enum class LocalOrder { kInteriorFirst, kBoundaryFirst, kNatural };

/// Options for a distributed coloring run.
struct DistColoringOptions {
  VertexId superstep_size = 1000;
  CommMode comm_mode = CommMode::kCustomizedNeighbors;
  SuperstepMode superstep_mode = SuperstepMode::kAsync;
  LocalOrder local_order = LocalOrder::kInteriorFirst;
  ColorStrategy strategy = ColorStrategy::kFirstFit;
  /// Wire codec for the boundary-color frames (kFixed is the legacy
  /// fixed-width ablation baseline).
  WireCodec codec = WireCodec::kCompact;
  MachineModel model = MachineModel::blue_gene_p();
  std::uint64_t seed = 0;
  /// Safety bound on rounds (the framework converges in ~6 on real inputs).
  int max_rounds = 1000;
  /// Deterministic fault injection. A dropped boundary-color message makes
  /// the *sender* reset the affected vertices and re-enter them into the
  /// conflict-repair loop (their colors were invisible to the receiver, so
  /// conflict detection there could not have been symmetric); the final
  /// coloring stays conflict-free. Disabled by default.
  FaultConfig faults;
  /// Instrumentation options (optional JSONL trace sink).
  TraceConfig trace;
  /// Execution backend: with exec.threads > 1 the parallel-safe phases
  /// (synchronous-superstep compute, post-barrier drains, conflict
  /// detection) run the rank callbacks on a thread pool, bit-identically to
  /// sequential execution. Asynchronous supersteps poll mid-superstep and
  /// always run sequentially.
  ExecConfig exec;

  /// FIAB preset: broadcast-based, superstep ~100 (paper: best for
  /// poorly-partitioned graphs among the broadcast variants).
  [[nodiscard]] static DistColoringOptions fiab();
  /// FIAC preset: customized-to-all, superstep ~1000.
  [[nodiscard]] static DistColoringOptions fiac();
  /// The paper's new algorithm: customized-to-neighbors, superstep ~1000.
  [[nodiscard]] static DistColoringOptions improved();
};

/// Result of a distributed coloring run.
struct DistColoringResult {
  Coloring coloring;  ///< Global coloring (indexed by global vertex id).
  RunResult run;
  int rounds = 0;
  std::vector<EdgeId> conflicts_per_round;  ///< Vertices recolored per round.
  std::int64_t total_supersteps = 0;
  /// Vertices re-entered into repair because their color announcement was
  /// dropped by the fault layer (0 when faults are disabled).
  std::int64_t fault_reentries = 0;
  /// Asynchronous supersteps that ran deferred (parallel-capable snapshot
  /// harvest) vs. the sequential live-poll fallback; both 0 in sync mode.
  /// Pure functions of the modelled clocks, identical at every thread count.
  std::int64_t snapshot_parallel_supersteps = 0;
  std::int64_t snapshot_fallback_supersteps = 0;
};

/// Runs the distributed coloring on a pre-built distribution.
[[nodiscard]] DistColoringResult color_distributed(
    const DistGraph& dist, const DistColoringOptions& options = {});

/// Convenience overload: builds the distribution from (g, p) first.
[[nodiscard]] DistColoringResult color_distributed(
    const Graph& g, const Partition& p, const DistColoringOptions& options = {});

}  // namespace pmc
