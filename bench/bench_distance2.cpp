// Extension E2 — distributed distance-2 coloring (the Jacobian/Hessian
// compression variant the paper's introduction motivates).
//
// Compares the native two-hop-view implementation against the squared-graph
// formulation (distance-1 framework on G²) across processor counts: both
// must produce proper distance-2 colorings; the native version ships color
// records only to two-hop neighbor ranks.
#include "bench_common.hpp"

#include <iostream>

#include "coloring/distance2_parallel.hpp"

namespace pmc::bench {
namespace {

int run(int argc, const char** argv) {
  Options opts;
  opts.add("vertices", "40000", "circuit graph size");
  opts.add("ranks", "16,64,256,1024", "comma-separated processor counts");
  opts.add("csv", "", "optional CSV output path");
  (void)opts.parse(argc, argv);
  const auto n = static_cast<VertexId>(opts.get_int("vertices"));

  std::vector<int> rank_list;
  {
    std::istringstream iss(opts.get("ranks"));
    std::string tok;
    while (std::getline(iss, tok, ',')) rank_list.push_back(std::stoi(tok));
  }

  banner("Extension E2 — distributed distance-2 coloring",
         "speculative framework generalizes to distance-2 (Jacobian "
         "compression); native two-hop views vs the squared-graph reference");

  const Graph g = circuit_like(n, n * 2, 6, WeightKind::kUnit, 91);
  const Coloring seq = greedy_distance2_coloring(g);
  std::cout << "input: " << g.summary()
            << "; sequential D2 colors=" << seq.num_colors() << "\n\n";

  TextTable table({"procs", "variant", "colors", "rounds", "messages",
                   "volume (B)", "sim (s)"},
                  {Align::kRight, Align::kLeft, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});
  table.set_title("distance-2 coloring: native two-hop vs squared graph");
  CsvSink csv(opts.get("csv"), {"ranks", "variant", "colors", "rounds",
                                "messages", "bytes", "sim_seconds"});

  const Graph squared = square_graph(g);
  for (const int ranks : rank_list) {
    const Partition p = multilevel_partition(
        g, static_cast<Rank>(ranks), MultilevelConfig::metis_like(3));

    const auto native = color_distance2_distributed_native(g, p);
    std::string why;
    PMC_CHECK(is_proper_distance2_coloring(g, native.coloring, &why), why);
    table.add_row({cell_count(ranks), "native 2-hop",
                   cell_count(native.coloring.num_colors()),
                   cell_count(native.rounds),
                   cell_count(native.run.comm.messages),
                   cell_count(native.run.comm.bytes),
                   cell_sci(native.run.sim_seconds)});
    csv.row({std::to_string(ranks), "native",
             std::to_string(native.coloring.num_colors()),
             std::to_string(native.rounds),
             std::to_string(native.run.comm.messages),
             std::to_string(native.run.comm.bytes),
             std::to_string(native.run.sim_seconds)});

    const auto sq =
        color_distributed(squared, p, DistColoringOptions::improved());
    PMC_CHECK(is_proper_distance2_coloring(g, sq.coloring, &why), why);
    table.add_row({cell_count(ranks), "squared graph",
                   cell_count(sq.coloring.num_colors()),
                   cell_count(sq.rounds),
                   cell_count(sq.run.comm.messages),
                   cell_count(sq.run.comm.bytes),
                   cell_sci(sq.run.sim_seconds)});
    csv.row({std::to_string(ranks), "squared",
             std::to_string(sq.coloring.num_colors()),
             std::to_string(sq.rounds),
             std::to_string(sq.run.comm.messages),
             std::to_string(sq.run.comm.bytes),
             std::to_string(sq.run.sim_seconds)});
  }
  table.print(std::cout);
  std::cout << "(both formulations color every distance-<=2 pair distinctly; "
               "the native version avoids materializing G^2)\n";
  return 0;
}

}  // namespace
}  // namespace pmc::bench

int main(int argc, const char** argv) {
  try {
    return pmc::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_distance2: " << e.what() << '\n';
    return 1;
  }
}
