#include "coloring/jones_plassmann.hpp"

#include <algorithm>
#include <vector>

#include "coloring/sequential.hpp"
#include "runtime/bsp_engine.hpp"
#include "runtime/serialize.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace pmc {

namespace {

struct JpRankState {
  const LocalGraph* lg = nullptr;
  std::vector<Color> color;          // owned + ghost, local ids
  std::vector<VertexId> uncolored;   // owned, shrinking frontier
  std::vector<std::vector<Rank>> adj_ranks;  // per boundary vertex
  ColorChooser chooser{ColorStrategy::kFirstFit};
  // Per-rank send scratch (isolated so rank callbacks can run concurrently).
  std::vector<FrameWriter> dest_payload;
};

}  // namespace

// pmc-lint: schema(ColorRecord)
JonesPlassmannResult color_jones_plassmann(
    const DistGraph& dist, const JonesPlassmannOptions& options) {
  WallTimer wall;
  const Rank P = dist.num_ranks();
  BspEngine engine(P, options.model, FabricConfig{}, options.exec);

  std::vector<JpRankState> states(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    JpRankState& st = states[static_cast<std::size_t>(r)];
    const LocalGraph& lg = dist.local(r);
    st.lg = &lg;
    st.dest_payload.assign(static_cast<std::size_t>(P),
                           FrameWriter(options.codec));
    st.color.assign(static_cast<std::size_t>(lg.num_local()), kNoColor);
    st.uncolored.resize(static_cast<std::size_t>(lg.num_owned()));
    for (VertexId v = 0; v < lg.num_owned(); ++v) {
      st.uncolored[static_cast<std::size_t>(v)] = v;
    }
    st.adj_ranks.assign(static_cast<std::size_t>(lg.num_owned()), {});
    for (VertexId v : lg.boundary_vertices()) {
      auto& ranks = st.adj_ranks[static_cast<std::size_t>(v)];
      for (VertexId u : lg.neighbors(v)) {
        if (lg.is_ghost(u)) ranks.push_back(lg.ghost_owner(u));
      }
      std::sort(ranks.begin(), ranks.end());
      ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    }
  }

  JonesPlassmannResult result;

  while (true) {
    VertexId remaining = 0;
    for (const auto& st : states) {
      remaining += static_cast<VertexId>(st.uncolored.size());
    }
    if (remaining == 0) break;
    PMC_REQUIRE(result.rounds < options.max_rounds,
                "Jones-Plassmann failed to converge in " << options.max_rounds
                                                         << " rounds");
    // Each JP round is bulk-synchronous (no mid-round polling), so the
    // per-rank callbacks always parallelize.
    engine.run_ranks(true, [&](BspEngine::RankCtx& ctx) {
      const Rank r = ctx.rank();
      JpRankState& st = states[static_cast<std::size_t>(r)];
      const LocalGraph& lg = *st.lg;
      auto& dest_payload = st.dest_payload;
      std::vector<Rank> touched;
      std::vector<VertexId> still_uncolored;
      still_uncolored.reserve(st.uncolored.size());
      for (const VertexId v : st.uncolored) {
        ctx.charge(static_cast<double>(lg.degree(v)) + 1.0);
        const VertexId gv = lg.global_id(v);
        const std::uint64_t pv = vertex_priority(gv, options.seed);
        bool is_max = true;
        for (VertexId u : lg.neighbors(v)) {
          if (st.color[static_cast<std::size_t>(u)] != kNoColor) continue;
          const VertexId gu = lg.global_id(u);
          const std::uint64_t pu = vertex_priority(gu, options.seed);
          if (pu > pv || (pu == pv && gu > gv)) {
            is_max = false;
            break;
          }
        }
        if (!is_max) {
          still_uncolored.push_back(v);
          continue;
        }
        for (VertexId u : lg.neighbors(v)) {
          const Color cu = st.color[static_cast<std::size_t>(u)];
          if (cu != kNoColor) st.chooser.forbid(cu);
        }
        const Color c = st.chooser.choose(nullptr);
        st.color[static_cast<std::size_t>(v)] = c;
        if (lg.is_boundary(v)) {
          for (Rank dst : st.adj_ranks[static_cast<std::size_t>(v)]) {
            auto& w = dest_payload[static_cast<std::size_t>(dst)];
            if (w.empty()) touched.push_back(dst);
            w.begin_record();
            w.put_id(gv);
            w.put_color(c);
          }
        }
      }
      st.uncolored = std::move(still_uncolored);
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      for (Rank dst : touched) {
        auto& w = dest_payload[static_cast<std::size_t>(dst)];
        const std::int64_t records = w.records();
        ctx.send(dst, w.take(), records);
      }
    });
    // Round barrier + ghost color application.
    engine.barrier();
    engine.run_ranks(true, [&](BspEngine::RankCtx& ctx) {
      JpRankState& st = states[static_cast<std::size_t>(ctx.rank())];
      for (const BspMessage& msg : ctx.drain()) {
        FrameReader reader(msg.payload);
        PMC_CHECK(reader.valid(), "undetected bad frame reached JP: "
                                      << reader.error());
        for (std::int64_t i = 0; i < reader.records(); ++i) {
          const VertexId global = reader.read_id();
          const Color c = reader.read_color();
          const VertexId local = st.lg->local_id(global);
          PMC_CHECK(local != kNoVertex, "JP record for unknown vertex");
          st.color[static_cast<std::size_t>(local)] = c;
        }
        PMC_CHECK(reader.done(), "trailing garbage after the last JP record");
      }
    });
    ++result.rounds;
  }

  result.coloring.color.assign(
      static_cast<std::size_t>(dist.num_global_vertices()), kNoColor);
  for (Rank r = 0; r < P; ++r) {
    const JpRankState& st = states[static_cast<std::size_t>(r)];
    for (VertexId v = 0; v < st.lg->num_owned(); ++v) {
      result.coloring.color[static_cast<std::size_t>(st.lg->global_id(v))] =
          st.color[static_cast<std::size_t>(v)];
    }
  }
  result.run.sim_seconds = engine.time();
  result.run.wall_seconds = wall.seconds();
  result.run.comm = engine.comm();
  result.run.load = engine.load_stats();
  result.run.rounds = result.rounds;
  return result;
}

JonesPlassmannResult color_jones_plassmann(
    const Graph& g, const Partition& p, const JonesPlassmannOptions& options) {
  const DistGraph dist = DistGraph::build(g, p);
  return color_jones_plassmann(dist, options);
}

}  // namespace pmc
