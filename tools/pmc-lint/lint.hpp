// pmc-lint — the project's determinism & protocol static-analysis pass.
//
// A token/AST-lite scanner over the C++ sources that enforces invariants the
// runtime's reproducibility guarantees rest on (DESIGN.md §7). It is not a
// compiler: rules are implemented over a comment/string-stripped token view
// of each translation unit, tuned to this codebase's idiom, and every
// diagnostic can be suppressed in place with a justification:
//
//     // pmc-lint: allow(D1): order-independent integer sum, no sends
//
// on the diagnostic's line or the line directly above it. A suppression
// without a justification text does not count.
//
// Rules (scopes are path predicates relative to the repo root):
//
//   D1  no unordered_map/unordered_set range-iteration in message-producing
//       code (src/matching, src/coloring, src/runtime) — hash-order
//       traversals would tie send sequences to the standard library's
//       bucket layout. Use the sorted-snapshot helpers (support/sorted.hpp).
//   D2  no hidden entropy: rand, srand, std::random_device, time(),
//       std::chrono::system_clock anywhere outside src/support/rng.* and
//       src/support/timer.hpp. All randomness flows through pmc::Rng; all
//       wall time through WallTimer.
//   D3  no raw memcpy / reinterpret_cast serialization outside
//       src/runtime/serialize.* — wire traffic goes through the versioned,
//       checksummed frame codec.
//   D4  every FrameReader/ByteReader decode loop must end with a done()
//       check, so trailing garbage is rejected instead of silently ignored.
//   D5  no float/double accumulation inside an unordered-container
//       range-iteration anywhere in src/ — FP addition is order-sensitive,
//       so a hash-order reduction is silently nondeterministic.
//   D6  no direct CommFabric::post_send in event-path code (the event
//       engine and any file handling an EventContext: src/matching,
//       src/coloring). post_send reads and advances the live sender clock,
//       which a windowed parallel dispatch cannot replay — sends must route
//       through EventContext::send / the Lane deferred API, or through
//       begin_send() + post_send_at() on the merge path. Files that never
//       mention EventContext (the BSP engine's direct superstep path) are
//       out of scope.
//   D7  no raw mid-superstep inbox harvest in BSP driver code (src/matching,
//       src/coloring, src/runtime, excluding the engine itself): calling
//       BspEngine::poll(rank) — any member poll() with arguments — from a
//       superstep body reads the live inbox, which the snapshot-harvest
//       parallel path cannot replay. Drivers must use RankCtx::poll() (no
//       arguments) inside a run_ranks_snapshot phase, where the engine
//       resolves deliveries sequentially before compute fans out. Files
//       that never mention RankCtx are out of scope.
#pragma once

#include <string>
#include <vector>

namespace pmc_lint {

/// One finding. `suppressed` is true when a well-formed allow() comment with
/// a justification covers the line.
struct Diagnostic {
  std::string rule;     ///< "D1".."D7".
  std::string file;     ///< Path as given to analyze_file.
  int line = 0;         ///< 1-based.
  std::string message;  ///< Human-readable explanation.
  bool suppressed = false;
  std::string justification;  ///< allow() comment text when suppressed.
};

/// Which rule families apply to a file, derived from its path.
struct RuleScope {
  bool d1 = false;  ///< Message-producing code (matching/coloring/runtime).
  bool d2 = false;  ///< Everything except the entropy allowlist.
  bool d3 = false;  ///< Everything except serialize.*.
  bool d4 = true;   ///< Decoder hygiene applies everywhere.
  bool d5 = false;  ///< All of src/.
  bool d6 = false;  ///< Event-path code (event engine, matching, coloring).
  bool d7 = false;  ///< BSP driver code (matching/coloring/runtime sans engine).
};

/// Scope for a path as the CI lint run uses it: `path` is normalized to the
/// repo-relative form before the src/-based predicates are applied.
[[nodiscard]] RuleScope scope_for_path(const std::string& path);

/// Scope with every rule enabled — what the fixture tests use, so each rule
/// can be exercised regardless of where the fixture file lives.
[[nodiscard]] RuleScope all_rules();

/// Runs every in-scope rule over one file's contents. `path` is used for
/// diagnostics only; scoping is the caller's job (scope_for_path).
[[nodiscard]] std::vector<Diagnostic> analyze_source(
    const std::string& path, const std::string& contents,
    const RuleScope& scope);

/// analyze_source over the file at `path` (throws std::runtime_error when
/// unreadable), scoped by scope_for_path unless `scope` is provided.
[[nodiscard]] std::vector<Diagnostic> analyze_file(const std::string& path);
[[nodiscard]] std::vector<Diagnostic> analyze_file(const std::string& path,
                                                   const RuleScope& scope);

/// Extracts the "file" entries of a compile_commands.json, deduplicated, in
/// first-appearance order. Tolerant of formatting; throws on unreadable
/// input.
[[nodiscard]] std::vector<std::string> compile_commands_files(
    const std::string& json_path);

/// Serializes a run's findings as the machine-readable JSON report.
[[nodiscard]] std::string to_json(const std::vector<Diagnostic>& diags,
                                  std::size_t files_scanned);

}  // namespace pmc_lint
