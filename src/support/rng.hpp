// Deterministic pseudo-random number generation.
//
// All randomness in pmc flows through these generators so that every
// experiment is reproducible from a single seed. Two generators are provided:
//
//  * SplitMix64 — tiny stateless-feel generator, used for seeding and for
//    per-vertex hash priorities (the coloring algorithm's r(v) function is a
//    SplitMix64 hash of the vertex id, exactly as the paper prescribes:
//    "a random function is defined over boundary vertices ... using v's ID
//    as seed").
//  * Xoshiro256StarStar — the main workhorse generator; satisfies
//    std::uniform_random_bit_generator so it composes with <random>.
#pragma once

#include <cstdint>
#include <limits>

#include "support/error.hpp"

namespace pmc {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used both as a standalone hash and to expand seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateful SplitMix64 generator (mostly used for seeding Xoshiro).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 256-bit state.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection-free Lemire-style
  /// reduction; tiny modulo bias is irrelevant for the ranges pmc uses but we
  /// avoid it anyway via 128-bit multiply.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PMC_REQUIRE(lo <= hi, "empty range [" << lo << ", " << hi << "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    const auto x = (*this)();
    const auto prod =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(span);
    return lo + static_cast<std::int64_t>(prod >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept {
    return uniform_double() < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Default RNG alias used throughout pmc.
using Rng = Xoshiro256StarStar;

/// Derives an independent child seed from (seed, stream). Used to give each
/// simulated rank / generator instance its own stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  return splitmix64(seed ^ splitmix64(stream + 0x517cc1b727220a95ULL));
}

}  // namespace pmc
