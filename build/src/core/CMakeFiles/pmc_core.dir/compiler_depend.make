# Empty compiler generated dependencies file for pmc_core.
# This may be replaced when dependencies are built.
