file(REMOVE_RECURSE
  "CMakeFiles/pmc_support.dir/csv.cpp.o"
  "CMakeFiles/pmc_support.dir/csv.cpp.o.d"
  "CMakeFiles/pmc_support.dir/error.cpp.o"
  "CMakeFiles/pmc_support.dir/error.cpp.o.d"
  "CMakeFiles/pmc_support.dir/log.cpp.o"
  "CMakeFiles/pmc_support.dir/log.cpp.o.d"
  "CMakeFiles/pmc_support.dir/options.cpp.o"
  "CMakeFiles/pmc_support.dir/options.cpp.o.d"
  "CMakeFiles/pmc_support.dir/rng.cpp.o"
  "CMakeFiles/pmc_support.dir/rng.cpp.o.d"
  "CMakeFiles/pmc_support.dir/stats.cpp.o"
  "CMakeFiles/pmc_support.dir/stats.cpp.o.d"
  "CMakeFiles/pmc_support.dir/table.cpp.o"
  "CMakeFiles/pmc_support.dir/table.cpp.o.d"
  "libpmc_support.a"
  "libpmc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
