#include "runtime/serialize.hpp"

#include <cstdint>
#include <cstring>

#include "support/rng.hpp"

namespace pmc {

namespace {

constexpr std::uint32_t kFnvOffsetBasis = 0x811C9DC5u;
constexpr std::uint32_t kFnvPrime = 0x01000193u;

/// Longest LEB128 encoding of a 64-bit value.
constexpr std::size_t kMaxVarintBytes = 10;

}  // namespace

const char* to_string(WireCodec codec) noexcept {
  switch (codec) {
    case WireCodec::kFixed:
      return "fixed";
    case WireCodec::kCompact:
      return "compact";
  }
  return "?";
}

WireCodec parse_wire_codec(const std::string& name) {
  if (name == "fixed") return WireCodec::kFixed;
  if (name == "compact") return WireCodec::kCompact;
  PMC_FAIL("unknown wire codec '" << name << "' (expected fixed|compact)");
}

std::uint32_t fnv1a32(std::span<const std::byte> bytes) noexcept {
  std::uint32_t h = kFnvOffsetBasis;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint32_t>(static_cast<std::uint8_t>(b));
    h *= kFnvPrime;
  }
  return h;
}

std::vector<std::byte> FrameWriter::take() {
  last_id_ = 0;
  if (records_ == 0) {
    payload_.clear();
    return {};
  }
  VarintWriter frame;
  frame.put_u8(static_cast<std::uint8_t>(
      (kWireFormatVersion << 4) | static_cast<std::uint8_t>(codec_)));
  frame.put_uvarint(static_cast<std::uint64_t>(records_));
  frame.put_uvarint(static_cast<std::uint64_t>(payload_.size()));
  for (const std::byte b : payload_.bytes()) {
    frame.put_u8(static_cast<std::uint8_t>(b));
  }
  const std::uint32_t sum = fnv1a32(frame.bytes());
  frame.put_raw(sum);
  payload_.clear();
  records_ = 0;
  return frame.take();
}

FrameReader::FrameReader(std::span<const std::byte> frame) noexcept {
  parse(frame);
}

void FrameReader::parse(std::span<const std::byte> frame) noexcept {
  // Manual bounds-checked parse: a garbled frame must surface as !valid(),
  // never as an assertion or out-of-range read.
  const std::size_t n = frame.size();
  std::size_t pos = 0;
  const auto u8_at = [&](std::size_t i) {
    return static_cast<std::uint8_t>(frame[i]);
  };
  const auto take_uvarint = [&](std::uint64_t& out) {
    out = 0;
    for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
      if (pos >= n) return false;
      const std::uint8_t b = u8_at(pos++);
      out |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
      if ((b & 0x80) == 0) return true;
    }
    return false;  // varint longer than any 64-bit value
  };

  if (n < 1 + 1 + 1 + kFrameChecksumBytes) {
    error_ = "frame too short";
    return;
  }
  const std::uint8_t tag = u8_at(pos++);
  if ((tag >> 4) != kWireFormatVersion) {
    error_ = "unknown wire format version";
    return;
  }
  const auto codec = static_cast<WireCodec>(tag & 0x0F);
  if (codec != WireCodec::kFixed && codec != WireCodec::kCompact) {
    error_ = "unknown codec tag";
    return;
  }
  std::uint64_t records = 0;
  std::uint64_t payload_len = 0;
  if (!take_uvarint(records) || !take_uvarint(payload_len)) {
    error_ = "truncated frame header";
    return;
  }
  if (records > static_cast<std::uint64_t>(INT64_MAX)) {
    error_ = "implausible record count";
    return;
  }
  if (pos + kFrameChecksumBytes > n ||
      payload_len != n - pos - kFrameChecksumBytes) {
    error_ = "payload length mismatch";
    return;
  }
  std::uint32_t declared = 0;
  std::memcpy(&declared, frame.data() + (n - kFrameChecksumBytes),
              kFrameChecksumBytes);
  if (fnv1a32(frame.subspan(0, n - kFrameChecksumBytes)) != declared) {
    error_ = "checksum mismatch";
    return;
  }
  codec_ = codec;
  records_ = static_cast<std::int64_t>(records);
  payload_ = frame.subspan(pos, payload_len);
}

std::uint64_t FrameReader::read_uvarint() {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    PMC_CHECK(pos_ < payload_.size(),
              "frame payload underflow reading varint at offset " << pos_);
    const auto b = static_cast<std::uint8_t>(payload_[pos_++]);
    out |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) return out;
  }
  PMC_FAIL("overlong varint in frame payload");
}

std::uint8_t FrameReader::read_u8() {
  PMC_CHECK(valid(), "reading from an invalid frame: " << error_);
  return read_raw<std::uint8_t>();
}

VertexId FrameReader::read_id() {
  PMC_CHECK(valid(), "reading from an invalid frame: " << error_);
  if (codec_ == WireCodec::kFixed) return read_raw<VertexId>();
  last_id_ += read_svarint();
  return last_id_;
}

VertexId FrameReader::read_id_rel() {
  PMC_CHECK(valid(), "reading from an invalid frame: " << error_);
  if (codec_ == WireCodec::kFixed) return read_raw<VertexId>();
  return last_id_ + read_svarint();
}

Color FrameReader::read_color() {
  PMC_CHECK(valid(), "reading from an invalid frame: " << error_);
  if (codec_ == WireCodec::kFixed) return read_raw<Color>();
  const std::int64_t c = read_svarint();
  return static_cast<Color>(c);
}

void corrupt_one_bit(std::vector<std::byte>& bytes, std::uint64_t seed) {
  PMC_REQUIRE(!bytes.empty(), "cannot corrupt an empty buffer");
  const std::uint64_t h = splitmix64(seed ^ 0xC0DEC0DEC0DEC0DEULL);
  const std::size_t bit = static_cast<std::size_t>(h % (bytes.size() * 8));
  bytes[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
}

}  // namespace pmc
