// Fixture: the D8 suppression path — a schema asymmetry covered by a
// justified allow() must be reported as suppressed, and an allow() without
// a justification must not count. Encoder and decoders share one file so
// the fixture stands alone. Scan fodder for the lint suite, not compiled.
#include <cstdint>

enum class WireMsg : std::uint8_t { kColorRec = 1 };

struct FrameWriter {
  void begin_record();
  void put_u8(std::uint8_t);
  void put_id(std::int64_t);
  void put_color(std::int32_t);
};

struct FrameReader {
  std::uint8_t read_u8();
  std::int64_t read_id();
  std::int32_t read_color();
  bool done();
};

void on_color(std::int64_t v, std::int32_t c);
void on_done(bool ok);

void ship_color(FrameWriter& w, std::int64_t v, std::int32_t c) {
  w.begin_record();
  w.put_u8(static_cast<std::uint8_t>(WireMsg::kColorRec));
  w.put_id(v);
  w.put_color(c);
}

void apply_legacy(FrameReader& r) {
  // pmc-lint: allow(D8): legacy v1 frames read color first; gone next release
  const auto kind = static_cast<WireMsg>(r.read_u8());
  if (kind == WireMsg::kColorRec) {
    const std::int32_t c = r.read_color();
    const std::int64_t v = r.read_id();
    on_color(v, c);
  }
  on_done(r.done());
}

void apply_sloppy(FrameReader& r) {
  // pmc-lint: allow(D8)
  const auto kind = static_cast<WireMsg>(r.read_u8());
  if (kind == WireMsg::kColorRec) {
    const std::int32_t c = r.read_color();
    const std::int64_t v = r.read_id();
    on_color(v, c);
  }
  on_done(r.done());
}
