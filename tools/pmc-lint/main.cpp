// pmc-lint CLI.
//
//   pmc-lint --compile-commands=build/compile_commands.json [--json=PATH]
//   pmc-lint [--all-rules] file.cpp [file2.cpp ...]
//
// With --compile-commands the tool lints every src/ translation unit the
// build knows about, plus the headers under src/ (headers never appear in
// compile_commands but hold template code — Bundler::flush lived in one).
// Explicit file arguments are linted as given; --all-rules overrides the
// path-based scoping (the fixture suite's mode).
//
// Exit status: 0 = clean (suppressed findings are fine), 1 = at least one
// unsuppressed diagnostic, 2 = usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage() {
  std::cerr << "usage: pmc-lint [--compile-commands=PATH] [--root=DIR] "
               "[--json[=PATH]] [--all-rules] [files...]\n";
  return 2;
}

/// Headers under root/src — compile_commands only lists .cpp files, but the
/// determinism rules bind to header code too.
std::vector<std::string> src_headers(const std::string& root) {
  std::vector<std::string> out;
  const std::filesystem::path src = std::filesystem::path(root) / "src";
  if (!std::filesystem::is_directory(src)) return out;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hpp") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string compile_commands;
  std::string root = ".";
  std::string json_path;
  bool json = false;
  bool all_rules = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--compile-commands=", 0) == 0) {
      compile_commands = arg.substr(19);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg == "--all-rules") {
      all_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pmc-lint: unknown option " << arg << "\n";
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (compile_commands.empty() && files.empty()) return usage();

  try {
    if (!compile_commands.empty()) {
      for (const std::string& f :
           pmc_lint::compile_commands_files(compile_commands)) {
        // The build also compiles tests/bench/examples and third-party
        // fixtures; the determinism contract binds to the library tree.
        if (f.find("/src/") != std::string::npos ||
            f.rfind("src/", 0) == 0) {
          files.push_back(f);
        }
      }
      for (std::string& h : src_headers(root)) {
        files.push_back(std::move(h));
      }
    }

    std::vector<pmc_lint::Diagnostic> diags;
    for (const std::string& f : files) {
      const auto scope =
          all_rules ? pmc_lint::all_rules() : pmc_lint::scope_for_path(f);
      auto d = pmc_lint::analyze_file(f, scope);
      diags.insert(diags.end(), d.begin(), d.end());
    }

    std::size_t unsuppressed = 0;
    for (const auto& d : diags) {
      if (d.suppressed) continue;
      ++unsuppressed;
      std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    }
    std::size_t suppressed = diags.size() - unsuppressed;

    if (json) {
      const std::string report = pmc_lint::to_json(diags, files.size());
      if (json_path.empty()) {
        std::cout << report;
      } else {
        std::ofstream out(json_path, std::ios::binary);
        if (!out.good()) {
          std::cerr << "pmc-lint: cannot write " << json_path << "\n";
          return 2;
        }
        out << report;
      }
    }

    std::cout << "pmc-lint: " << files.size() << " files, "
              << unsuppressed << " unsuppressed, " << suppressed
              << " suppressed diagnostic(s)\n";
    return unsuppressed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
