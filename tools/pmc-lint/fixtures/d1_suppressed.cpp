// Fixture: the suppression path — a D1 hit covered by a justified allow()
// comment must be reported as suppressed, and an allow() without a
// justification must not count.
#include <cstdint>
#include <unordered_map>

using Rank = std::int32_t;

std::int64_t total_records(const std::unordered_map<Rank, std::int64_t>& m) {
  std::int64_t total = 0;
  // pmc-lint: allow(D1): order-independent integer sum, no sends
  for (const auto& [dst, records] : m) total += records;
  return total;
}

std::int64_t bad_suppression(const std::unordered_map<Rank, std::int64_t>& m) {
  std::int64_t total = 0;
  // pmc-lint: allow(D1)
  for (const auto& [dst, records] : m) total += records;
  return total;
}
