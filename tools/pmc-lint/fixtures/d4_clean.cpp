// Fixture: D4 must stay silent — the decode loop ends with a done() check,
// and a validity-only temporary (no reads) needs none.
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

struct FrameReader {
  explicit FrameReader(std::span<const std::byte>) {}
  [[nodiscard]] bool valid() const { return true; }
  [[nodiscard]] std::int64_t records() const { return 0; }
  [[nodiscard]] std::int64_t read_id() { return 0; }
  [[nodiscard]] bool done() const { return true; }
};

std::vector<std::int64_t> decode(std::span<const std::byte> payload) {
  std::vector<std::int64_t> ids;
  FrameReader reader(payload);
  for (std::int64_t i = 0; i < reader.records(); ++i) {
    ids.push_back(reader.read_id());
  }
  assert(reader.done());
  return ids;
}

bool frame_ok(std::span<const std::byte> payload) {
  return FrameReader(payload).valid();
}
