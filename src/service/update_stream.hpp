// Dynamic-graph update streams for service mode.
//
// Service mode (DESIGN.md §8) keeps a graph alive across a stream of edge
// updates and incrementally repairs the matching and coloring after every
// batch. This header provides the three stream-side pieces:
//
//   * EdgeUpdate / UpdateOp — one insert / delete / reweight operation;
//   * DynamicGraph — a mutable adjacency-map mirror of a pmc::Graph that
//     applies updates and snapshots back to CSR form;
//   * UpdateStreamGenerator — a seeded, replayable random stream of valid
//     updates against the evolving graph;
//   * JSONL serialization — write_update_log / read_update_log, so a stream
//     can be captured once and replayed bit-identically (mtx_tool
//     --update-log / --update-replay).
//
// Every generated stream is deterministic given its seed, and a written log
// round-trips exactly (weights are printed with 17 significant digits).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace pmc {

/// Kind of one edge update.
enum class UpdateOp : std::uint8_t {
  kInsert = 1,    ///< Add edge (u, v) with weight w; (u, v) must be absent.
  kDelete = 2,    ///< Remove edge (u, v); it must be present.
  kReweight = 3,  ///< Set the weight of existing edge (u, v) to w.
};

[[nodiscard]] const char* to_string(UpdateOp op);

/// One edge update. Endpoints are stored normalized (u < v).
struct EdgeUpdate {
  UpdateOp op = UpdateOp::kInsert;
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  Weight w = Weight{1};  ///< Ignored for kDelete.

  [[nodiscard]] bool operator==(const EdgeUpdate&) const = default;
};

/// Mutable mirror of an undirected weighted graph: per-vertex sorted
/// adjacency maps, kept symmetric. The vertex set is fixed at construction;
/// only edges change. snapshot() rebuilds an immutable CSR Graph.
class DynamicGraph {
 public:
  explicit DynamicGraph(const Graph& initial);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept { return m_; }
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;
  /// Weight of existing edge (u, v); throws if absent.
  [[nodiscard]] Weight edge_weight(VertexId u, VertexId v) const;

  /// Applies one update; throws pmc::Error when the update is invalid
  /// against the current edge set (inserting a present edge, deleting or
  /// reweighting an absent one, self-loop, out-of-range endpoint).
  void apply(const EdgeUpdate& update);

  /// Freezes the current edge set into a CSR Graph.
  [[nodiscard]] Graph snapshot() const;

 private:
  void require_valid_endpoints(const EdgeUpdate& update) const;

  VertexId n_ = 0;
  EdgeId m_ = 0;
  std::vector<std::map<VertexId, Weight>> adj_;
};

/// Configuration of the random update stream.
struct UpdateStreamConfig {
  /// Operation mix; the remainder (1 - insert - remove) is reweights.
  double insert_fraction = 0.4;
  double delete_fraction = 0.3;
  /// Weight distribution for inserted / reweighted edges.
  WeightKind weights = WeightKind::kUniformRandom;
  std::uint64_t seed = 0;
};

/// Seeded generator of valid update streams against an evolving graph.
///
/// The generator keeps its own edge-set mirror (it does not mutate the
/// DynamicGraph a service holds), so the produced stream is a pure function
/// of (initial graph, config). Operations that are impossible in the current
/// state degrade deterministically: delete/reweight on an edgeless graph
/// becomes an insert, insert into a complete graph becomes a delete.
class UpdateStreamGenerator {
 public:
  UpdateStreamGenerator(const Graph& initial, UpdateStreamConfig config);

  /// Produces the next update (already applied to the internal mirror).
  [[nodiscard]] EdgeUpdate next();

  /// Produces the next `count` updates.
  [[nodiscard]] std::vector<EdgeUpdate> next_batch(std::int64_t count);

 private:
  [[nodiscard]] EdgeUpdate make_insert();
  [[nodiscard]] EdgeUpdate make_delete();
  [[nodiscard]] EdgeUpdate make_reweight();
  [[nodiscard]] Weight draw_weight();
  void apply_to_mirror(const EdgeUpdate& update);

  UpdateStreamConfig config_;
  Rng rng_;
  VertexId n_;
  /// Present edges as normalized (u, v) pairs, with an index map enabling
  /// O(log m) uniform sampling and swap-pop removal.
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::map<std::pair<VertexId, VertexId>, std::size_t> edge_index_;
};

/// Writes one update per line as JSON ({"op":"insert","u":1,"v":2,"w":0.5});
/// weights carry 17 significant digits so the log replays bit-identically.
void write_update_log(std::ostream& out, const std::vector<EdgeUpdate>& updates);
void write_update_log(const std::string& path,
                      const std::vector<EdgeUpdate>& updates);

/// Reads a JSONL update log written by write_update_log. Throws pmc::Error
/// on malformed lines (strict field set, no trailing garbage).
[[nodiscard]] std::vector<EdgeUpdate> read_update_log(std::istream& in);
[[nodiscard]] std::vector<EdgeUpdate> read_update_log(const std::string& path);

}  // namespace pmc
