# Empty dependencies file for pmc_coloring.
# This may be replaced when dependencies are built.
