// Execution backend tests: the work-stealing pool's exactly-once / ordering
// / failure contracts, and the engines' bit-identical-at-any-thread-count
// guarantee (the runtime/exec design invariant).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pmc.hpp"
#include "partition/simple.hpp"
#include "runtime/bsp_engine.hpp"
#include "runtime/event_engine.hpp"
#include "runtime/exec/thread_pool.hpp"

namespace pmc {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WorkRunsOffTheCallerThread) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::mutex m;
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(m);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_FALSE(seen.empty());
  EXPECT_EQ(seen.count(caller), 0u);
}

TEST(ThreadPool, StealingCoversUnevenWork) {
  // One giant index plus many trivial ones: the workers owning the small
  // blocks go idle and must steal to finish; every index still runs once.
  ThreadPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    if (i == 0) {
      volatile double sink = 0.0;
      for (int k = 0; k < 2000000; ++k) sink = sink + 1.0;
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, RethrowsLowestThrowingIndex) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i % 10 == 3) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  // The pool survives a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossJobsAndHandlesSmallN) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(0, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 0);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(2, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorker) {
  // A worker that re-enters parallel_for must not wait on the pool's job
  // lock (that would deadlock); the nested loop runs inline on the worker.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::atomic<int> nested_off_worker{0};
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(4, [&](std::size_t) {
    const auto outer_thread = std::this_thread::get_id();
    pool.parallel_for(3, [&](std::size_t) {
      ++total;
      if (std::this_thread::get_id() != outer_thread) ++nested_off_worker;
    });
  });
  EXPECT_EQ(total.load(), 12);
  // Inline execution: every nested index ran on the thread that submitted it.
  EXPECT_EQ(nested_off_worker.load(), 0);
  (void)caller;
}

TEST(ExecutionBackend, SequentialRunsInOrderOnCaller) {
  const ExecutionBackend backend;  // default: sequential
  EXPECT_EQ(backend.mode(), ExecMode::kSequential);
  EXPECT_EQ(backend.threads(), 1);
  std::vector<std::size_t> order;
  backend.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutionBackend, ThreadedModeSelectsPool) {
  const ExecutionBackend backend(ExecConfig{3});
  EXPECT_EQ(backend.mode(), ExecMode::kThreads);
  EXPECT_EQ(backend.threads(), 3);
  std::atomic<int> count{0};
  backend.parallel_for(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutionBackend, TaskWindowRunsEveryTaskAndIsReusable) {
  const ExecutionBackend backend(ExecConfig{2});
  auto window = backend.make_window();
  window.wait();  // zero-task barrier is a no-op
  std::atomic<int> count{0};
  for (int i = 0; i < 7; ++i) {
    window.submit([&] { ++count; });
  }
  EXPECT_EQ(window.size(), 7u);
  window.wait();
  EXPECT_EQ(count.load(), 7);
  EXPECT_EQ(window.size(), 0u);
  // Reusable: a second batch through the same window.
  window.submit([&] { count += 10; });
  window.wait();
  EXPECT_EQ(count.load(), 17);
}

TEST(ExecutionBackend, TaskWindowRethrowsLowestIndexFailure) {
  const ExecutionBackend backend(ExecConfig{4});
  auto window = backend.make_window();
  std::atomic<int> ran{0};
  for (int i = 0; i < 6; ++i) {
    window.submit([&ran, i] {
      ++ran;
      if (i == 2) throw std::runtime_error("task two");
      if (i == 4) throw std::runtime_error("task four");
    });
  }
  try {
    window.wait();
    FAIL() << "wait() must rethrow a task failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task two");
  }
  EXPECT_EQ(ran.load(), 6);  // every task still ran to completion
  // The window is drained and usable again after a failed batch.
  window.submit([&ran] { ++ran; });
  window.wait();
  EXPECT_EQ(ran.load(), 7);
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: a deferred (threaded) phase must reproduce the
// direct (sequential) fabric state exactly — clocks, stats, fault verdicts.

std::string fabric_fingerprint(const RunResult& run) {
  std::ostringstream os;
  os << std::hexfloat;
  os << run.sim_seconds << '|' << run.comm.messages << '|' << run.comm.bytes
     << '|' << run.comm.records << '|' << run.comm.collectives;
  os << '|' << run.load.min_seconds << '|' << run.load.max_seconds << '|'
     << run.load.mean_seconds;
  const FaultStats f = run.breakdown.total_faults();
  os << '|' << f.drops << '|' << f.duplicates << '|' << f.retries << '|'
     << f.backoff_seconds;
  return os.str();
}

RunResult run_bsp_scenario(int threads, std::int64_t* dropped_seen) {
  constexpr Rank kRanks = 6;
  FabricConfig config;
  config.jitter_seconds = 1e-6;
  config.jitter_seed = 5;
  config.fault.drop_rate = 0.2;
  config.fault.duplicate_rate = 0.1;
  config.fault.seed = 9;
  BspEngine engine(kRanks, MachineModel::blue_gene_p(), config,
                   ExecConfig{threads});
  std::int64_t drops = 0;
  for (int step = 0; step < 4; ++step) {
    engine.fabric().set_round_all(step);
    engine.run_ranks(true, [&](BspEngine::RankCtx& ctx) {
      const Rank r = ctx.rank();
      ctx.charge(3.5 * static_cast<double>(r + 1), WorkPhase::kInterior);
      for (Rank dst = 0; dst < kRanks; ++dst) {
        if (dst == r) continue;
        std::vector<std::byte> payload(static_cast<std::size_t>(8 + r));
        ctx.send(dst, std::move(payload), /*records=*/1,
                 [&drops](const CommFabric::SendReceipt& receipt,
                          std::span<const std::byte>) {
                   if (receipt.dropped) ++drops;
                 });
      }
      ctx.charge(2.0, WorkPhase::kBoundary);
    });
    engine.barrier();
    engine.run_ranks(true, [&](BspEngine::RankCtx& ctx) {
      for (const BspMessage& msg : ctx.drain()) {
        ctx.charge(static_cast<double>(msg.payload.size()));
      }
    });
  }
  engine.allreduce();
  RunResult out;
  engine.fabric().export_into(out);
  if (dropped_seen != nullptr) *dropped_seen = drops;
  return out;
}

TEST(ExecEquivalence, BspDeferredPhasesMatchSequential) {
  std::int64_t drops1 = 0;
  const std::string base = fabric_fingerprint(run_bsp_scenario(1, &drops1));
  EXPECT_GT(drops1, 0);  // the scenario actually exercises fault verdicts
  for (const int threads : {2, 3, 8}) {
    std::int64_t drops = 0;
    const auto run = run_bsp_scenario(threads, &drops);
    EXPECT_EQ(fabric_fingerprint(run), base) << "threads=" << threads;
    EXPECT_EQ(drops, drops1) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Snapshot-superstep equivalence: asynchronous phases (mid-superstep polls)
// must reproduce the sequential schedule exactly whether the clock safety
// check admits the deferred parallel path or forces the live-poll fallback.

struct SnapshotProbe {
  RunResult run;
  std::int64_t polled_records = 0;
  std::int64_t drops = 0;
  std::int64_t parallel_phases = 0;
  std::int64_t fallback_phases = 0;
};

SnapshotProbe run_bsp_snapshot_scenario(int threads) {
  constexpr Rank kRanks = 6;
  FabricConfig config;
  config.jitter_seconds = 1e-6;
  config.jitter_seed = 5;
  config.fault.drop_rate = 0.2;
  config.fault.duplicate_rate = 0.1;
  config.fault.seed = 9;
  BspEngine engine(kRanks, MachineModel::blue_gene_p(), config,
                   ExecConfig{threads});
  SnapshotProbe probe;
  // Per-rank so the deferred bodies (which run on the pool) never share a
  // counter; receipt callbacks replay sequentially, so `drops` is safe as-is.
  std::array<std::int64_t, kRanks> polled{};
  for (int round = 0; round < 3; ++round) {
    engine.fabric().set_round_all(round);
    for (int step = 0; step < 4; ++step) {
      engine.run_ranks_snapshot([&](BspEngine::RankCtx& ctx) {
        const Rank r = ctx.rank();
        // Poll first (the snapshot contract), charging per record.
        for (const BspMessage& msg : ctx.poll()) {
          polled[static_cast<std::size_t>(r)] += msg.records;
          ctx.charge(static_cast<double>(msg.records), WorkPhase::kBoundary);
        }
        // Rank-skewed compute: clocks diverge within the round, so later
        // supersteps trip the safety check and take the fallback, while the
        // superstep right after each allreduce starts from equal clocks and
        // runs deferred.
        ctx.charge(40.0 * static_cast<double>(r + 1), WorkPhase::kInterior);
        for (Rank hop = 1; hop <= 2; ++hop) {
          std::vector<std::byte> payload(static_cast<std::size_t>(8 + r));
          ctx.send((r + hop) % kRanks, std::move(payload), /*records=*/2,
                   [&probe](const CommFabric::SendReceipt& receipt,
                            std::span<const std::byte>) {
                     if (receipt.dropped) ++probe.drops;
                   });
        }
      });
    }
    // Round boundary: collect stragglers and re-equalize the clocks.
    engine.barrier();
    engine.run_ranks(true, [&](BspEngine::RankCtx& ctx) {
      for (const BspMessage& msg : ctx.drain()) {
        ctx.charge(static_cast<double>(msg.records), WorkPhase::kBoundary);
      }
    });
    engine.allreduce();
  }
  engine.fabric().export_into(probe.run);
  for (const std::int64_t records : polled) probe.polled_records += records;
  probe.parallel_phases = engine.snapshot_parallel_phases();
  probe.fallback_phases = engine.snapshot_fallback_phases();
  return probe;
}

TEST(ExecEquivalence, SnapshotSuperstepsMatchSequential) {
  const SnapshotProbe base = run_bsp_snapshot_scenario(1);
  // The scenario must really exercise everything: mid-superstep deliveries,
  // fault verdicts, and both branches of the safety check.
  EXPECT_GT(base.polled_records, 0);
  EXPECT_GT(base.drops, 0);
  EXPECT_GT(base.parallel_phases, 0);
  EXPECT_GT(base.fallback_phases, 0);
  const std::string base_fp = fabric_fingerprint(base.run);
  for (const int threads : {2, 3, 8}) {
    const SnapshotProbe probe = run_bsp_snapshot_scenario(threads);
    EXPECT_EQ(fabric_fingerprint(probe.run), base_fp) << "threads=" << threads;
    EXPECT_EQ(probe.polled_records, base.polled_records)
        << "threads=" << threads;
    EXPECT_EQ(probe.drops, base.drops) << "threads=" << threads;
    EXPECT_EQ(probe.parallel_phases, base.parallel_phases)
        << "threads=" << threads;
    EXPECT_EQ(probe.fallback_phases, base.fallback_phases)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Event-path equivalence: windowed multi-threaded dispatch must reproduce the
// sequential event engine exactly — including transport retries whose timers
// fire inside a window — mirroring the BSP probe above for the async path.

/// Gossip: every rank opens by messaging its two clockwise neighbours; each
/// delivery below the size cap is answered with a two-byte-larger reply, so
/// traffic criss-crosses ranks densely enough that windows hold events for
/// several shards at once.
class GossipProcess final : public Process {
 public:
  GossipProcess(Rank rank, Rank ranks) : rank_(rank), ranks_(ranks) {}

  void start(EventContext& ctx) override {
    for (Rank hop = 1; hop <= 2; ++hop) {
      ctx.charge(1.5 * static_cast<double>(rank_ + hop));
      ctx.send((rank_ + hop) % ranks_, std::vector<std::byte>(8), 1);
    }
  }

  void handle(EventContext& ctx, Rank src,
              std::span<const std::byte> payload) override {
    ++received_;
    ctx.charge(static_cast<double>(payload.size()));
    if (payload.size() < 24) {
      ctx.send(src, std::vector<std::byte>(payload.size() + 2), 1);
    }
  }

  [[nodiscard]] bool done() const override { return true; }

  [[nodiscard]] std::int64_t received() const { return received_; }

 private:
  Rank rank_;
  Rank ranks_;
  std::int64_t received_ = 0;
};

RunResult run_gossip_scenario(int threads, std::int64_t* received_total) {
  constexpr Rank kRanks = 8;
  FabricConfig config;
  config.jitter_seconds = 1e-6;
  config.jitter_seed = 11;
  config.fault.drop_rate = 0.25;
  config.fault.duplicate_rate = 0.05;
  config.fault.seed = 3;
  EventEngine engine(MachineModel::blue_gene_p(), config, ExecConfig{threads});
  std::vector<const GossipProcess*> procs;
  for (Rank r = 0; r < kRanks; ++r) {
    auto p = std::make_unique<GossipProcess>(r, kRanks);
    procs.push_back(p.get());
    engine.add_process(std::move(p));
  }
  RunResult out = engine.run();
  if (received_total != nullptr) {
    *received_total = 0;
    for (const GossipProcess* p : procs) *received_total += p->received();
  }
  return out;
}

TEST(ExecEquivalence, EventWindowedDispatchMatchesSequential) {
  std::int64_t received1 = 0;
  const RunResult base_run = run_gossip_scenario(1, &received1);
  const std::string base = fabric_fingerprint(base_run);
  EXPECT_GT(received1, 0);
  // Drops force the reliable transport's retry timers to fire mid-run, so
  // the windowed path has to replay timer events and backoff draws too.
  EXPECT_GT(base_run.breakdown.total_faults().retries, 0);
  EXPECT_GT(base_run.breakdown.total_faults().drops, 0);
  for (const int threads : {2, 4, 8}) {
    std::int64_t received = 0;
    const RunResult run = run_gossip_scenario(threads, &received);
    EXPECT_EQ(fabric_fingerprint(run), base) << "threads=" << threads;
    EXPECT_EQ(received, received1) << "threads=" << threads;
  }
}

// The full drivers (BSP sync-superstep coloring, event-engine matching, JP)
// are covered by the determinism regression suite at threads 1/2/4; this
// keeps an engine-level probe so a future merge bug localizes here first.

}  // namespace
}  // namespace pmc
