#include "matching/matching.hpp"

#include <sstream>

#include "support/error.hpp"

namespace pmc {

namespace {

void explain(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
}

}  // namespace

VertexId Matching::cardinality() const noexcept {
  VertexId pairs = 0;
  for (std::size_t v = 0; v < mate.size(); ++v) {
    if (mate[v] != kNoVertex && mate[v] > static_cast<VertexId>(v)) ++pairs;
  }
  return pairs;
}

bool is_valid_matching(const Graph& g, const Matching& m, std::string* why) {
  if (m.num_vertices() != g.num_vertices()) {
    explain(why, "matching size does not equal vertex count");
    return false;
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId u = m.mate[static_cast<std::size_t>(v)];
    if (u == kNoVertex) continue;
    std::ostringstream oss;
    if (u < 0 || u >= g.num_vertices()) {
      oss << "mate(" << v << ") = " << u << " out of range";
      explain(why, oss.str());
      return false;
    }
    if (u == v) {
      oss << "vertex " << v << " matched to itself";
      explain(why, oss.str());
      return false;
    }
    if (m.mate[static_cast<std::size_t>(u)] != v) {
      oss << "asymmetric mates: mate(" << v << ")=" << u << " but mate(" << u
          << ")=" << m.mate[static_cast<std::size_t>(u)];
      explain(why, oss.str());
      return false;
    }
    if (!g.has_edge(v, u)) {
      oss << "matched pair (" << v << ", " << u << ") is not an edge";
      explain(why, oss.str());
      return false;
    }
  }
  return true;
}

Weight matching_weight(const Graph& g, const Matching& m) {
  PMC_REQUIRE(m.num_vertices() == g.num_vertices(),
              "matching/graph size mismatch");
  Weight total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId u = m.mate[static_cast<std::size_t>(v)];
    if (u != kNoVertex && u > v) {
      total += g.edge_weight(v, u);
    }
  }
  return total;
}

bool is_maximal_matching(const Graph& g, const Matching& m) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (m.is_matched(v)) continue;
    for (VertexId u : g.neighbors(v)) {
      if (!m.is_matched(u)) return false;  // edge (v, u) could be added
    }
  }
  return true;
}

bool has_dominance_certificate(const Graph& g, const Matching& m,
                               std::string* why) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u < v) continue;  // each edge once
      if (m.mate[static_cast<std::size_t>(v)] == u) continue;  // in M
      const Weight w = g.has_weights() ? ws[i] : Weight{1};
      // Edge (v, u) not in M: one endpoint must carry a matched edge of
      // weight >= w.
      bool dominated = false;
      for (VertexId end : {v, u}) {
        const VertexId mate = m.mate[static_cast<std::size_t>(end)];
        if (mate != kNoVertex && g.edge_weight(end, mate) >= w) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        if (why != nullptr) {
          std::ostringstream oss;
          oss << "edge (" << v << ", " << u << ") with weight " << w
              << " is not dominated by any adjacent matched edge";
          *why = oss.str();
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace pmc
