// Shared helpers for the benchmark harness: scaling-series bookkeeping, the
// actual-vs-ideal tables that mirror the paper's figures, and renderers for
// the fabric's per-rank / per-round communication breakdowns.
#pragma once

#include <string>
#include <vector>

#include "runtime/comm_stats.hpp"
#include "support/table.hpp"

namespace pmc {

/// One measured point of a scaling study.
struct ScalingPoint {
  int ranks = 0;
  std::string label;       ///< e.g. grid dimensions (weak scaling).
  double seconds = 0.0;    ///< modelled compute time.
  double extra = 0.0;      ///< experiment-specific (weight, colors, ...).
};

/// A scaling series plus metadata, rendered like one curve of a paper figure.
class ScalingSeries {
 public:
  ScalingSeries(std::string title, std::string extra_name = "");

  void add(ScalingPoint point);

  [[nodiscard]] const std::vector<ScalingPoint>& points() const noexcept {
    return points_;
  }

  /// Ideal times: constant for weak scaling.
  [[nodiscard]] std::vector<double> ideal_weak() const;

  /// Ideal times: t0 * p0 / p for strong scaling (anchored on the first
  /// measured point).
  [[nodiscard]] std::vector<double> ideal_strong() const;

  /// Renders the series as "ranks | actual | ideal | efficiency" rows.
  /// `strong` selects the ideal law.
  [[nodiscard]] TextTable to_table(bool strong) const;

  /// Parallel efficiency of the last point relative to ideal.
  [[nodiscard]] double final_efficiency(bool strong) const;

 private:
  std::string title_;
  std::string extra_name_;
  std::vector<ScalingPoint> points_;
};

/// Renders a run's per-round communication series as "round | messages |
/// records | volume (B) | collectives" rows — the per-phase counts related
/// distributed-matching implementations report.
[[nodiscard]] TextTable comm_rounds_table(const std::string& title,
                                          const CommBreakdown& breakdown);

/// Renders a run's per-rank traffic plus the interior/boundary split of the
/// charged compute time.
[[nodiscard]] TextTable comm_ranks_table(const std::string& title,
                                         const CommBreakdown& breakdown);

/// Renders the message-size histogram (non-empty power-of-two buckets).
[[nodiscard]] TextTable comm_size_histogram_table(
    const std::string& title, const CommBreakdown& breakdown);

}  // namespace pmc
