// Example: command-line tool that runs the paper's two algorithms on a
// Matrix Market file — matching on the bipartite representation, coloring
// on the adjacency representation — optionally on simulated ranks.
//
// Usage:
//   mtx_tool <file.mtx> [--ranks=64] [--threads=4] [--codec=compact] [--quality]
//   mtx_tool <file.mtx> --updates=500 [--update-batch=32] [--update-seed=7]
//            [--update-log=stream.jsonl] [--update-verify]
//   mtx_tool <file.mtx> --update-replay=stream.jsonl [--update-batch=32]
//
// With --quality (square/rectangular matrices of moderate size) the exact
// bipartite matching is also computed and the Table 1.1-style quality
// percentage reported.
//
// With --updates (square matrices: the service runs on the adjacency
// representation) the tool enters service mode: it generates a seeded
// stream of edge inserts / deletes / reweights, pushes it through a
// GraphService in --update-batch-sized batches, and reports the modelled
// time of each incremental repair. --update-log captures the stream as
// JSONL; --update-replay replays a captured log instead of generating
// (the same log reproduces the same repairs bit for bit). --update-verify
// additionally recomputes from scratch after every batch and asserts the
// incremental result is byte-identical.
#include <iostream>

#include "core/pmc.hpp"
#include "support/options.hpp"

int main(int argc, const char** argv) {
  using namespace pmc;
  Options opts;
  opts.add("ranks", "16", "simulated rank count");
  opts.add("threads", "", "execution backend threads (or PMC_THREADS)");
  opts.add("codec", "compact", "wire codec: fixed | compact");
  opts.add_flag("quality", "also compute the exact matching (slow)");
  opts.add("updates", "0", "service mode: generate this many edge updates");
  opts.add("update-batch", "32", "service mode: updates coalesced per batch");
  opts.add("update-seed", "0", "service mode: update-stream seed");
  opts.add("update-log", "", "service mode: write the stream as JSONL");
  opts.add("update-replay", "", "service mode: replay a JSONL stream instead "
                                "of generating");
  opts.add_flag("update-verify", "service mode: recompute from scratch after "
                                 "every batch and require identical results");
  std::vector<std::string> files;
  ExecConfig exec;
  Rank ranks = 0;
  WireCodec codec = WireCodec::kCompact;
  std::int64_t n_updates = 0;
  try {
    files = opts.parse(argc, argv);
    ranks = static_cast<Rank>(opts.get_int("ranks"));
    exec.threads = opts.get_threads();
    codec = parse_wire_codec(opts.get("codec"));
    n_updates = opts.get_int("updates");
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << opts.help("mtx_tool");
    return 2;
  }
  if (files.empty()) {
    std::cerr << opts.help("mtx_tool")
              << "  (pass one or more Matrix Market files)\n";
    return 2;
  }

  for (const auto& file : files) {
    try {
      const SparseMatrix m = read_matrix_market_file(file);
      std::cout << "=== " << file << " ===\n"
                << "matrix " << m.rows << " x " << m.cols
                << ", nnz=" << m.num_entries()
                << (m.symmetric ? " (symmetric)" : "") << "\n";

      // Matching on the bipartite representation.
      BipartiteInfo info;
      const Graph bip = matrix_to_bipartite(m, info);
      DistMatchingOptions mopt;
      mopt.exec = exec;
      mopt.codec = codec;
      const auto match_result = match_on_ranks(bip, ranks, mopt);
      std::cout << "matching (" << ranks << " ranks): weight="
                << matching_weight(bip, match_result.matching)
                << " pairs=" << match_result.matching.cardinality()
                << " time=" << match_result.run.sim_seconds << "s\n";
      if (opts.get_flag("quality")) {
        const Matching exact = exact_max_weight_bipartite_matching(bip, info);
        const Weight we = matching_weight(bip, exact);
        const Weight wa = matching_weight(bip, match_result.matching);
        std::cout << "quality vs optimal: " << (we > 0 ? wa / we : 1.0) * 100
                  << "%\n";
      }

      // Coloring on the adjacency representation (square matrices only).
      if (m.rows == m.cols) {
        const Graph adj = matrix_to_adjacency(m);
        // Async supersteps (the default) poll mid-superstep and so run their
        // compute sequentially; conflict detection still parallelizes.
        DistColoringOptions copt;
        copt.exec = exec;
        copt.codec = codec;
        const auto color_result = color_on_ranks(adj, ranks, copt);
        std::cout << "coloring (" << ranks
                  << " ranks): colors=" << color_result.coloring.num_colors()
                  << " rounds=" << color_result.rounds
                  << " time=" << color_result.run.sim_seconds << "s\n";

        // Service mode: stream edge updates through incremental repair.
        const std::string replay_path = opts.get("update-replay");
        if (n_updates > 0 || !replay_path.empty()) {
          std::vector<EdgeUpdate> stream;
          if (!replay_path.empty()) {
            stream = read_update_log(replay_path);
            std::cout << "service: replaying " << stream.size()
                      << " update(s) from " << replay_path << "\n";
          } else {
            UpdateStreamConfig cfg;
            cfg.seed = static_cast<std::uint64_t>(
                opts.get_int("update-seed"));
            UpdateStreamGenerator gen(adj, cfg);
            stream = gen.next_batch(n_updates);
          }
          const std::string log_path = opts.get("update-log");
          if (!log_path.empty()) {
            write_update_log(log_path, stream);
            std::cout << "service: stream written to " << log_path << "\n";
          }

          ServiceOptions so;
          so.batch_window = opts.get_int("update-batch");
          so.verify_batches = opts.get_flag("update-verify");
          so.matching.exec = exec;
          so.matching.codec = codec;
          so.coloring.exec = exec;
          so.coloring.codec = codec;
          GraphService service(
              adj, block_partition(adj.num_vertices(), ranks), so);
          for (const EdgeUpdate& u : stream) (void)service.push(u);
          if (service.pending_updates() > 0) (void)service.refresh();

          double inc_sim = 0.0, full_sim = 0.0;
          for (const BatchReport& r : service.history()) {
            std::cout << "service batch " << r.batch << ": updates="
                      << r.updates << " invalidated=" << r.match_invalidated
                      << " recolored=" << r.color_recolored
                      << " repair=" << r.match_sim_seconds +
                                           r.color_sim_seconds
                      << "s weight=" << r.matching_weight
                      << " colors=" << r.num_colors << "\n";
            inc_sim += r.match_sim_seconds + r.color_sim_seconds;
            full_sim += r.full_match_sim_seconds + r.full_color_sim_seconds;
          }
          std::cout << "service totals: batches=" << service.history().size()
                    << " incremental=" << inc_sim << "s";
          if (so.verify_batches) {
            std::cout << " recompute=" << full_sim
                      << "s (verified identical)";
          }
          std::cout << "\n";
        }
      } else if (n_updates > 0 || !opts.get("update-replay").empty()) {
        std::cout << "service mode skipped: " << file
                  << " is not square (the service runs on the adjacency "
                     "representation)\n";
      }
    } catch (const Error& e) {
      std::cerr << file << ": " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}
