// Synthetic graph generators.
//
// These produce the inputs for the paper's experiments:
//   * grid_2d — five-point k1×k2 grid graphs (the weak/strong scaling inputs
//     of Figs 5.1 and 5.2); edges get uniform-random weights so the grid
//     structure "does not play a significant role", as in the paper.
//   * circuit_like — a G3_circuit-style graph: low bounded degree (2..6),
//     mostly-local connectivity, mildly irregular (the strong-scaling inputs
//     of Figs 5.3 and 5.4).
//   * random_bipartite / matrix-like generators — inputs for the Table 1.1
//     matching-quality study.
//   * erdos_renyi, rmat, random_geometric, and small structured graphs —
//     used by the test suite's property sweeps.
//
// Every generator is deterministic given its seed.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "support/types.hpp"

namespace pmc {

/// Weight assignment for generated graphs.
enum class WeightKind {
  kUnit,          ///< All weights 1 (unweighted semantics).
  kUniformRandom, ///< i.i.d. uniform in (0, 1].
  kIntegral,      ///< Uniform integers in [1, 1000] (exercises weight ties).
};

/// Five-point 2-D grid graph: vertex (i, j) with 0<=i<rows, 0<=j<cols is
/// connected to its N/S/E/W neighbors. Vertex id = i * cols + j.
[[nodiscard]] Graph grid_2d(VertexId rows, VertexId cols,
                            WeightKind weights = WeightKind::kUnit,
                            std::uint64_t seed = 0);

/// Seven-point 3-D grid graph (extension beyond the paper's inputs).
[[nodiscard]] Graph grid_3d(VertexId nx, VertexId ny, VertexId nz,
                            WeightKind weights = WeightKind::kUnit,
                            std::uint64_t seed = 0);

/// Erdős–Rényi G(n, m): m distinct uniform random edges.
[[nodiscard]] Graph erdos_renyi(VertexId n, EdgeId m,
                                WeightKind weights = WeightKind::kUniformRandom,
                                std::uint64_t seed = 1);

/// R-MAT graph with the standard (a, b, c, d) recursive quadrant
/// probabilities; produces a skewed degree distribution. `scale` gives
/// n = 2^scale vertices; edge_factor gives m ≈ edge_factor * n edges
/// (after deduplication m may be smaller).
[[nodiscard]] Graph rmat(int scale, EdgeId edge_factor, double a = 0.57,
                         double b = 0.19, double c = 0.19,
                         WeightKind weights = WeightKind::kUniformRandom,
                         std::uint64_t seed = 2);

/// Random geometric graph: n points in the unit square, edge iff distance
/// <= radius. Uses grid bucketing, O(n + m).
[[nodiscard]] Graph random_geometric(VertexId n, double radius,
                                     WeightKind weights = WeightKind::kUniformRandom,
                                     std::uint64_t seed = 3);

/// Circuit-simulation-like graph in the spirit of G3_circuit: a long
/// backbone of chained nodes (min degree 2) with local shortcut links and a
/// sparse set of hub connections, degrees bounded by `max_degree` (paper: 6).
[[nodiscard]] Graph circuit_like(VertexId n, EdgeId target_edges,
                                 EdgeId max_degree = 6,
                                 WeightKind weights = WeightKind::kUniformRandom,
                                 std::uint64_t seed = 4);

/// Complete graph K_n (testing only; O(n^2) edges).
[[nodiscard]] Graph complete(VertexId n,
                             WeightKind weights = WeightKind::kUniformRandom,
                             std::uint64_t seed = 5);

/// Path graph 0-1-2-...-(n-1).
[[nodiscard]] Graph path(VertexId n,
                         WeightKind weights = WeightKind::kUnit,
                         std::uint64_t seed = 6);

/// Cycle graph on n >= 3 vertices.
[[nodiscard]] Graph cycle(VertexId n,
                          WeightKind weights = WeightKind::kUnit,
                          std::uint64_t seed = 7);

/// Star graph: center 0 connected to 1..n-1.
[[nodiscard]] Graph star(VertexId n,
                         WeightKind weights = WeightKind::kUniformRandom,
                         std::uint64_t seed = 8);

/// Random bipartite graph with `left` + `right` vertices and m distinct
/// edges; left side is [0, left), right side [left, left+right). Returns the
/// graph and fills `info`.
[[nodiscard]] Graph random_bipartite(VertexId left, VertexId right, EdgeId m,
                                     BipartiteInfo& info,
                                     WeightKind weights = WeightKind::kUniformRandom,
                                     std::uint64_t seed = 9);

/// Returns a copy of `g` with freshly drawn weights of the given kind.
[[nodiscard]] Graph reweight(const Graph& g, WeightKind weights,
                             std::uint64_t seed);

/// Bipartite double cover of `g` plus optional "diagonal" edges — the
/// bipartite representation of the symmetric matrix whose adjacency
/// structure is g (rows = vertices, columns = vertices, one nonzero per
/// adjacency entry and, when `with_diagonal`, per diagonal element). This
/// mirrors how the paper derives bipartite matching inputs from symmetric
/// UF-collection matrices. Vertex v's row copy is v; its column copy is
/// n + v. Diagonal weights are drawn uniformly from [0.5, 2).
[[nodiscard]] Graph bipartite_double_cover(const Graph& g, BipartiteInfo& info,
                                           bool with_diagonal,
                                           std::uint64_t seed);

}  // namespace pmc
