// Tests for the maximum-cardinality matching module (Karp-Sipser heuristic
// and Hopcroft-Karp exact bipartite matching).
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/cardinality.hpp"
#include "matching/sequential.hpp"
#include "support/error.hpp"

namespace pmc {
namespace {

TEST(KarpSipser, PerfectMatchingOnEvenPath) {
  const Graph g = path(6);
  const Matching m = karp_sipser_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.cardinality(), 3);  // degree-1 cascade finds the perfect one
}

TEST(KarpSipser, StarMatchesExactlyOneEdge) {
  const Graph g = star(9);
  const Matching m = karp_sipser_matching(g);
  EXPECT_EQ(m.cardinality(), 1);
}

TEST(KarpSipser, EmptyAndIsolated) {
  EXPECT_EQ(karp_sipser_matching(Graph{}).num_vertices(), 0);
  GraphBuilder b(3, false);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const Matching m = karp_sipser_matching(g);
  EXPECT_EQ(m.cardinality(), 1);
  EXPECT_EQ(m.mate[2], kNoVertex);
}

TEST(KarpSipser, MaximalOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = erdos_renyi(400, 1200, WeightKind::kUnit, seed);
    const Matching m = karp_sipser_matching(g, seed);
    EXPECT_TRUE(is_valid_matching(g, m));
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  BipartiteInfo info;
  const Graph g = random_bipartite(6, 6, 36, info);  // K_{6,6}
  const Matching m = hopcroft_karp_bipartite(g, info);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.cardinality(), 6);
}

TEST(HopcroftKarp, AugmentsThroughAlternatingPaths) {
  // Classic case where greedy gets stuck at 1 but optimum is 2:
  // left {0,1}, right {2,3}; edges (0,2), (0,3), (1,2).
  const Graph g = graph_from_edges(4, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}});
  const Matching m = hopcroft_karp_bipartite(g, BipartiteInfo{2, 2});
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(HopcroftKarp, RejectsNonBipartiteEdges) {
  const Graph t = graph_from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  EXPECT_THROW((void)hopcroft_karp_bipartite(t, BipartiteInfo{2, 1}), Error);
}

TEST(HopcroftKarp, MatchesKonigBoundOnBipartiteSweep) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    BipartiteInfo info;
    const Graph g =
        random_bipartite(30, 40, 150, info, WeightKind::kUnit, seed);
    const Matching exact = hopcroft_karp_bipartite(g, info);
    EXPECT_TRUE(is_valid_matching(g, exact));
    // Karp-Sipser is a heuristic: never better, usually close.
    const Matching ks = karp_sipser_matching(g, seed);
    EXPECT_LE(ks.cardinality(), exact.cardinality());
    EXPECT_GE(ks.cardinality(),
              (9 * exact.cardinality()) / 10);  // empirically ~97-100%
    // And any maximal matching is at least half of maximum.
    EXPECT_GE(2 * ks.cardinality(), exact.cardinality());
  }
}

TEST(HopcroftKarp, AgreesWithWeightedSolverCardinalityOnUnitWeights) {
  BipartiteInfo info;
  const Graph g = random_bipartite(25, 25, 120, info, WeightKind::kUnit, 4);
  const Matching hk = hopcroft_karp_bipartite(g, info);
  // With unit weights, max weight == max cardinality.
  const Matching ld = locally_dominant_matching(g);
  EXPECT_GE(hk.cardinality(), ld.cardinality());
}

}  // namespace
}  // namespace pmc
