// Small statistics helpers used by the benchmark harness and run reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pmc {

/// Streaming accumulator for count / min / max / mean / variance
/// (Welford's algorithm, numerically stable).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Population variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of the values using linear
/// interpolation between order statistics. Copies and sorts internally.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Geometric mean; all values must be positive.
[[nodiscard]] double geometric_mean(std::span<const double> values);

}  // namespace pmc
