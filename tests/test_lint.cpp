// Fixture suite for pmc-lint (tools/pmc-lint): every determinism rule
// D1–D7 must both fire on its violation fixture and stay silent on the
// conforming one, the allow() suppression path must work (and demand a
// justification), and the path-based rule scoping must carve out the
// sanctioned homes (rng/timer for entropy, serialize for raw bytes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using pmc_lint::Diagnostic;

std::string fixture(const std::string& name) {
  return std::string(PMC_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return pmc_lint::analyze_file(fixture(name), pmc_lint::all_rules());
}

std::vector<Diagnostic> with_rule(const std::vector<Diagnostic>& diags,
                                  const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

// ---- D1: unordered iteration in message-producing code --------------------

TEST(LintD1, FiresOnUnorderedRangeIterationFeedingSends) {
  const auto d1 = with_rule(lint_fixture("d1_violation.cpp"), "D1");
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_FALSE(d1[0].suppressed);
  EXPECT_EQ(d1[0].line, 12);
  EXPECT_NE(d1[0].message.find("sorted_keys"), std::string::npos);
}

TEST(LintD1, SilentOnSortedSnapshotAndPlainVectors) {
  EXPECT_TRUE(with_rule(lint_fixture("d1_clean.cpp"), "D1").empty());
}

TEST(LintD1, SuppressionNeedsAJustification) {
  const auto d1 = with_rule(lint_fixture("d1_suppressed.cpp"), "D1");
  ASSERT_EQ(d1.size(), 2u);
  // First hit: justified allow() on the line above — suppressed.
  EXPECT_TRUE(d1[0].suppressed);
  EXPECT_EQ(d1[0].justification, "order-independent integer sum, no sends");
  // Second hit: allow() without a justification — still counts.
  EXPECT_FALSE(d1[1].suppressed);
  EXPECT_NE(d1[1].message.find("no justification"), std::string::npos);
}

// ---- D2: hidden entropy ---------------------------------------------------

TEST(LintD2, FiresOnEveryEntropySource) {
  const auto d2 = with_rule(lint_fixture("d2_violation.cpp"), "D2");
  // srand, rand, time, random_device, system_clock.
  EXPECT_EQ(d2.size(), 5u);
  for (const auto& d : d2) EXPECT_FALSE(d.suppressed);
}

TEST(LintD2, SilentOnMemberTimeAndSteadyClock) {
  EXPECT_TRUE(with_rule(lint_fixture("d2_clean.cpp"), "D2").empty());
}

// ---- D3: raw serialization ------------------------------------------------

TEST(LintD3, FiresOnMemcpyAndReinterpretCast) {
  const auto d3 = with_rule(lint_fixture("d3_violation.cpp"), "D3");
  ASSERT_EQ(d3.size(), 2u);
  EXPECT_NE(d3[0].message.find("memcpy"), std::string::npos);
  EXPECT_NE(d3[1].message.find("reinterpret_cast"), std::string::npos);
}

TEST(LintD3, SilentOnFrameCodecUsage) {
  EXPECT_TRUE(with_rule(lint_fixture("d3_clean.cpp"), "D3").empty());
}

// ---- D4: decoder done() hygiene -------------------------------------------

TEST(LintD4, FiresOnDecodeLoopWithoutDoneCheck) {
  const auto d4 = with_rule(lint_fixture("d4_violation.cpp"), "D4");
  ASSERT_EQ(d4.size(), 1u);
  EXPECT_EQ(d4[0].line, 16);
  EXPECT_NE(d4[0].message.find("done()"), std::string::npos);
}

TEST(LintD4, SilentWhenDoneIsCheckedAndOnValidityOnlyTemporaries) {
  EXPECT_TRUE(with_rule(lint_fixture("d4_clean.cpp"), "D4").empty());
}

// ---- D5: FP reduction in hash order ----------------------------------------

TEST(LintD5, FiresOnFloatAccumulationUnderUnorderedIteration) {
  const auto d5 = with_rule(lint_fixture("d5_violation.cpp"), "D5");
  ASSERT_EQ(d5.size(), 1u);
  EXPECT_NE(d5[0].message.find("order-sensitive"), std::string::npos);
}

TEST(LintD5, SilentOnIntegerFoldsAndSortedSnapshots) {
  EXPECT_TRUE(with_rule(lint_fixture("d5_clean.cpp"), "D5").empty());
}

// ---- D6: direct post_send in event-path code --------------------------------

TEST(LintD6, FiresOnDirectPostSendInHandlerCode) {
  const auto d6 = with_rule(lint_fixture("d6_violation.cpp"), "D6");
  ASSERT_EQ(d6.size(), 1u);
  EXPECT_FALSE(d6[0].suppressed);
  EXPECT_EQ(d6[0].line, 22);
  EXPECT_NE(d6[0].message.find("EventContext::send"), std::string::npos);
}

TEST(LintD6, SilentOnDeferredSendAndExplicitTimePricing) {
  // ctx.send + begin_send/post_send_at are the sanctioned routes.
  EXPECT_TRUE(with_rule(lint_fixture("d6_clean.cpp"), "D6").empty());
}

TEST(LintD6, SilentWhenTheFileNeverMentionsEventContext) {
  // The BSP engine's direct superstep path may call post_send: the content
  // gate keeps files with no EventContext involvement out of scope even
  // when the path predicate matches.
  std::ifstream in(fixture("d6_violation.cpp"), std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string::size_type pos;
  while ((pos = text.find("EventContext")) != std::string::npos) {
    text.replace(pos, std::strlen("EventContext"), "SuperstepSlot");
  }
  const auto diags =
      pmc_lint::analyze_source("src/matching/x.cpp", text,
                               pmc_lint::scope_for_path("src/matching/x.cpp"));
  EXPECT_TRUE(with_rule(diags, "D6").empty());
}

TEST(LintD6, SuppressionNeedsAJustification) {
  const auto d6 = with_rule(lint_fixture("d6_suppressed.cpp"), "D6");
  ASSERT_EQ(d6.size(), 2u);
  EXPECT_TRUE(d6[0].suppressed);
  EXPECT_EQ(d6[0].justification,
            "sequential-only debug harness, never run windowed");
  EXPECT_FALSE(d6[1].suppressed);
}

// ---- D7: raw mid-superstep poll in BSP driver code --------------------------

TEST(LintD7, FiresOnRawPollInSuperstepBody) {
  const auto d7 = with_rule(lint_fixture("d7_violation.cpp"), "D7");
  ASSERT_EQ(d7.size(), 1u);
  EXPECT_FALSE(d7[0].suppressed);
  EXPECT_EQ(d7[0].line, 23);
  EXPECT_NE(d7[0].message.find("RankCtx::poll()"), std::string::npos);
}

TEST(LintD7, SilentOnSnapshotGatedPollAndDrain) {
  // ctx.poll() with no arguments is the sanctioned harvest; drain() is a
  // barrier-phase API and out of D7's sights entirely.
  EXPECT_TRUE(with_rule(lint_fixture("d7_clean.cpp"), "D7").empty());
}

TEST(LintD7, SilentWhenTheFileNeverMentionsRankCtx) {
  // Non-driver code (the event engine, the fabric) may own member poll()
  // calls: the content gate keeps files with no RankCtx involvement out of
  // scope even when the path predicate matches.
  std::ifstream in(fixture("d7_violation.cpp"), std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string::size_type pos;
  while ((pos = text.find("RankCtx")) != std::string::npos) {
    text.replace(pos, std::strlen("RankCtx"), "SlotCtx");
  }
  const auto diags =
      pmc_lint::analyze_source("src/coloring/x.cpp", text,
                               pmc_lint::scope_for_path("src/coloring/x.cpp"));
  EXPECT_TRUE(with_rule(diags, "D7").empty());
}

TEST(LintD7, SuppressionNeedsAJustification) {
  const auto d7 = with_rule(lint_fixture("d7_suppressed.cpp"), "D7");
  ASSERT_EQ(d7.size(), 2u);
  EXPECT_TRUE(d7[0].suppressed);
  EXPECT_EQ(d7[0].justification,
            "sequential-only diagnostics dump, never parallel");
  EXPECT_FALSE(d7[1].suppressed);
}

// ---- rule scoping ----------------------------------------------------------

TEST(LintScope, SanctionedHomesAreExempt) {
  // Entropy may live in the RNG and the wall timer; raw bytes in the codec.
  EXPECT_FALSE(pmc_lint::scope_for_path("src/support/rng.hpp").d2);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/support/rng.cpp").d2);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/support/timer.hpp").d2);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/support/options.cpp").d2);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/runtime/serialize.hpp").d3);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/runtime/serialize.cpp").d3);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/runtime/fabric.hpp").d3);
}

TEST(LintScope, D1BindsToMessageProducingDirectories) {
  EXPECT_TRUE(pmc_lint::scope_for_path("src/matching/parallel.cpp").d1);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/coloring/parallel.cpp").d1);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/runtime/fabric.hpp").d1);
  // Sequential/graph code orders nothing on the wire; D5 still applies.
  const auto graph = pmc_lint::scope_for_path("src/graph/algorithms.cpp");
  EXPECT_FALSE(graph.d1);
  EXPECT_TRUE(graph.d5);
  // Absolute build paths normalize to the repo-relative form.
  EXPECT_TRUE(
      pmc_lint::scope_for_path("/root/repo/src/matching/parallel.cpp").d1);
}

TEST(LintScope, D6BindsToTheEventPath) {
  EXPECT_TRUE(pmc_lint::scope_for_path("src/runtime/event_engine.cpp").d6);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/runtime/event_engine.hpp").d6);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/matching/parallel.cpp").d6);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/coloring/parallel.cpp").d6);
  // The BSP engine and the fabric itself legitimately own post_send.
  EXPECT_FALSE(pmc_lint::scope_for_path("src/runtime/bsp_engine.cpp").d6);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/runtime/fabric.cpp").d6);
}

TEST(LintScope, D7BindsToBspDriverCodeButNotTheEngine) {
  EXPECT_TRUE(pmc_lint::scope_for_path("src/coloring/parallel.cpp").d7);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/matching/parallel.cpp").d7);
  EXPECT_TRUE(pmc_lint::scope_for_path("src/runtime/event_engine.cpp").d7);
  // The engine's own files implement the snapshot harvest — they own the
  // raw inbox read.
  EXPECT_FALSE(pmc_lint::scope_for_path("src/runtime/bsp_engine.cpp").d7);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/runtime/bsp_engine.hpp").d7);
  EXPECT_FALSE(pmc_lint::scope_for_path("src/graph/algorithms.cpp").d7);
}

TEST(LintScope, PathScopingChangesTheFindings) {
  std::ifstream in(fixture("d1_violation.cpp"), std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto in_runtime = pmc_lint::analyze_source(
      "src/runtime/x.cpp", text,
      pmc_lint::scope_for_path("src/runtime/x.cpp"));
  EXPECT_EQ(with_rule(in_runtime, "D1").size(), 1u);
  const auto in_graph = pmc_lint::analyze_source(
      "src/graph/x.cpp", text, pmc_lint::scope_for_path("src/graph/x.cpp"));
  EXPECT_TRUE(with_rule(in_graph, "D1").empty());
}

// ---- drivers ---------------------------------------------------------------

TEST(LintDriver, CompileCommandsFilesParsesAndDeduplicates) {
  const std::string path = testing::TempDir() + "pmc_lint_cc.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << R"([
      {"directory": "/b", "command": "c++ -c a.cpp", "file": "/r/src/a.cpp"},
      {"directory": "/b", "command": "c++ -c b.cpp", "file": "/r/src/b.cpp"},
      {"directory": "/b", "command": "c++ -c a.cpp", "file": "/r/src/a.cpp"}
    ])";
  }
  const auto files = pmc_lint::compile_commands_files(path);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/r/src/a.cpp");
  EXPECT_EQ(files[1], "/r/src/b.cpp");
  std::remove(path.c_str());
  EXPECT_THROW(pmc_lint::compile_commands_files("/nonexistent/cc.json"),
               std::runtime_error);
}

TEST(LintDriver, JsonReportCountsSuppressedAndUnsuppressed) {
  auto diags = lint_fixture("d1_suppressed.cpp");
  const std::string json = pmc_lint::to_json(diags, 1);
  EXPECT_NE(json.find("\"tool\": \"pmc-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("order-independent integer sum"), std::string::npos);
}

}  // namespace
