# Empty dependencies file for pmc_graph.
# This may be replaced when dependencies are built.
