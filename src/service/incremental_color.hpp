// Incremental re-coloring after a batch of edge updates (service mode).
//
// The speculative framework's repair loop (coloring/parallel.cpp) converges
// to *a* proper coloring, but which one depends on the superstep schedule —
// useless for incremental repair, where the warm-started run must reproduce
// the cold run's answer bit for bit. Service mode therefore pins the
// *canonical* coloring: the unique fixed point
//
//     c(v) = first-fit over { c(u) : u a neighbor with higher priority },
//
// where "higher priority" is the framework's deterministic conflict order
// (vertex_priority, then global id — see wins_priority in
// coloring/color_exchange.hpp). This is exactly the coloring distributed
// Jones–Plassmann computes, and greedy first-fit in descending priority
// order computes it sequentially (canonical_coloring below).
//
// The incremental driver is a chaotic-iteration solver for that fixed
// point on the synchronous BSP runtime: warm-start every rank with the
// previous batch's colors (owned and ghost), re-enter only the updated
// edges' endpoints, recolor them canonically in supersteps, exchange the
// boundary colors that actually changed, and re-enter any neighbor whose
// stored color no longer equals its canonical fit. Because the dependency
// order (priority) is acyclic, the iteration terminates in the unique fixed
// point from *any* starting state — so the warm run, the cold run and the
// sequential reference all agree exactly, at every thread count, with or
// without fault injection (dropped announcements reuse PR 2's
// lost-tracking re-entry from coloring/color_exchange.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/coloring.hpp"
#include "coloring/parallel.hpp"
#include "service/update_stream.hpp"

namespace pmc {

/// Sequential reference for the canonical coloring: greedy first-fit in
/// descending (vertex_priority, id) order.
[[nodiscard]] Coloring canonical_coloring(const Graph& g,
                                          std::uint64_t seed = 0);

/// Result of an incremental (or cold canonical) distributed coloring run.
///
/// Reused DistColoringOptions fields: superstep_size, comm_mode, codec,
/// model, seed, max_rounds, faults, trace, exec. Ignored fields (the
/// canonical fixed point leaves no freedom): superstep_mode (always
/// synchronous), local_order (local-id order), strategy (first-fit over
/// higher-priority neighbors).
struct IncrementalColorResult {
  Coloring coloring;  ///< Coloring of the *new* graph (== cold recompute).
  RunResult run;
  int rounds = 0;
  std::int64_t total_supersteps = 0;
  /// Color assignments that changed a vertex's stored color.
  std::int64_t recolored = 0;
  /// Vertices re-entered because their announcement was dropped (PR 2's
  /// repair machinery; 0 without fault injection).
  std::int64_t fault_reentries = 0;
};

/// Repairs `previous` (the canonical coloring of the pre-update graph) into
/// the canonical coloring of `dist` (the post-update distribution).
/// `touched` lists the global endpoints of the batch's updates. The result
/// is byte-identical to color_canonical(dist, options).coloring.
[[nodiscard]] IncrementalColorResult color_incremental(
    const DistGraph& dist, const Coloring& previous,
    const std::vector<VertexId>& touched,
    const DistColoringOptions& options = {});

/// Cold canonical coloring with the same driver (every vertex re-entered,
/// no warm state) — the service's full-recompute baseline, and the
/// distributed equal of canonical_coloring / Jones–Plassmann.
[[nodiscard]] IncrementalColorResult color_canonical(
    const DistGraph& dist, const DistColoringOptions& options = {});

}  // namespace pmc
