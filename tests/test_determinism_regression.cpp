// Pinned-value determinism regression.
//
// The comm-fabric refactor (runtime/fabric.hpp) is required to be
// bit-identical to the pre-fabric engines: same seed => same modelled time,
// message count, volume and record count. These scenarios were captured on
// the original engines and must keep reproducing to the last bit. If an
// intentional cost-model or protocol change moves them, re-pin the constants
// in the same change and say why.
#include <gtest/gtest.h>

#include "core/pmc.hpp"
#include "partition/simple.hpp"

namespace pmc {
namespace {

struct Pinned {
  double sim_seconds;
  std::int64_t messages;
  std::int64_t bytes;
  std::int64_t records;
  std::int64_t collectives;
  int rounds;
};

void expect_pinned(const RunResult& run, int rounds, const Pinned& pin) {
  // Exact comparisons on purpose: the simulation is deterministic, so any
  // drift at all means the modelled semantics changed.
  EXPECT_EQ(run.sim_seconds, pin.sim_seconds);
  EXPECT_EQ(run.comm.messages, pin.messages);
  EXPECT_EQ(run.comm.bytes, pin.bytes);
  EXPECT_EQ(run.comm.records, pin.records);
  EXPECT_EQ(run.comm.collectives, pin.collectives);
  EXPECT_EQ(rounds, pin.rounds);
}

TEST(DeterminismRegression, DistributedMatchingScenarios) {
  const Graph g = grid_2d(48, 48, WeightKind::kUniformRandom, 61);
  Rank pr = 0, pc = 0;
  factor_processor_grid(8, pr, pc);
  const Partition p = grid_2d_partition(48, 48, pr, pc);
  const DistGraph dist = DistGraph::build(g, p);

  DistMatchingOptions bundled;
  const auto rb = match_distributed(dist, bundled);
  expect_pinned(rb.run, rb.max_activations,
                {7.13982000000031e-05, 42, 7634, 370, 0, 8});

  DistMatchingOptions unbundled;
  unbundled.bundled = false;
  const auto ru = match_distributed(dist, unbundled);
  expect_pinned(ru.run, ru.max_activations,
                {0.00014886460000000065, 370, 18130, 370, 0, 59});

  DistMatchingOptions jittered;
  jittered.jitter_seconds = 2e-6;
  jittered.jitter_seed = 7;
  const auto rj = match_distributed(dist, jittered);
  expect_pinned(rj.run, rj.max_activations,
                {7.39322960400553e-05, 41, 7568, 368, 0, 8});

  // Bundling and jitter change the schedule, never the matching itself.
  EXPECT_EQ(rb.matching.mate, ru.matching.mate);
  EXPECT_EQ(rb.matching.mate, rj.matching.mate);
}

TEST(DeterminismRegression, DistributedColoringScenarios) {
  const Graph g = circuit_like(2000, 4000, 6, WeightKind::kUnit, 62);
  const Partition p =
      multilevel_partition(g, 8, MultilevelConfig::metis_like(3));
  const DistGraph dist = DistGraph::build(g, p);

  const auto rn = color_distributed(dist, DistColoringOptions::improved());
  expect_pinned(rn.run, rn.rounds,
                {0.0001315559999999999, 87, 7860, 423, 6, 3});

  const auto rf = color_distributed(dist, DistColoringOptions::fiab());
  expect_pinned(rf.run, rf.rounds,
                {0.00016777360000000017, 231, 41244, 2821, 6, 3});

  const auto rc = color_distributed(dist, DistColoringOptions::fiac());
  expect_pinned(rc.run, rc.rounds,
                {0.0001443111999999999, 119, 8884, 423, 6, 3});
}

TEST(DeterminismRegression, Distance2ColoringScenario) {
  const Graph g = grid_2d(20, 20, WeightKind::kUnit, 63);
  const Partition p = grid_2d_partition(20, 20, 2, 2);
  const auto rd = color_distance2_distributed_native(g, p, {});
  expect_pinned(rd.run, rd.rounds,
                {0.00011627519999999997, 25, 3272, 206, 6, 3});
}

}  // namespace
}  // namespace pmc
