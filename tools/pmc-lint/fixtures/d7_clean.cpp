// Fixture: D7 must stay silent — superstep bodies harvesting arrivals
// through the snapshot-gated RankCtx::poll() (no arguments), which the
// engine resolves sequentially before compute fans out. Scan fodder for
// the lint fixture suite, not compiled.
#include <cstdint>
#include <vector>

using Rank = std::int32_t;

struct BspMessage {
  std::int64_t records;
};

struct RankCtx {
  Rank rank;
  std::vector<BspMessage> poll();
  std::vector<BspMessage> drain();
  void charge(double work_units);
};

void superstep(RankCtx& ctx) {
  // The sanctioned harvest: empty argument list, snapshot semantics.
  for (const BspMessage& msg : ctx.poll()) {
    ctx.charge(static_cast<double>(msg.records));
  }
}

void round_end(RankCtx& ctx) {
  // drain() is a barrier-phase API and never in D7's sights.
  for (const BspMessage& msg : ctx.drain()) {
    ctx.charge(static_cast<double>(msg.records));
  }
}
