file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_superstep.dir/bench_ablation_superstep.cpp.o"
  "CMakeFiles/bench_ablation_superstep.dir/bench_ablation_superstep.cpp.o.d"
  "bench_ablation_superstep"
  "bench_ablation_superstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_superstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
