// Instrumentation layer of the simulated comm fabric.
//
// CommTrace turns the fabric's raw event stream (sends, collectives, charged
// compute) into the per-rank × per-round CommStats breakdowns, message-size
// histograms and interior/boundary phase timers that RunResult::breakdown
// surfaces — the per-phase counts related distributed-matching codes (Azad
// et al., Birn et al.) report and that the aggregate-only CommStats could
// not produce. An optional JSONL sink appends one trace event per line for
// offline analysis.
//
// Round and phase are *attribution labels* set by the algorithm (or engine)
// driving the fabric:
//   * round — the algorithm's outer iteration at send time. The speculative
//     coloring uses its coloring round; the asynchronous matching uses the
//     sending rank's activation depth (messages handled so far).
//   * phase — whether charged compute is interior work (local, no ghosts),
//     boundary work (ghost/conflict handling), or unclassified.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "runtime/comm_stats.hpp"
#include "support/types.hpp"

namespace pmc {

/// What a charged unit of compute was doing (instrumentation only; has no
/// effect on modelled time).
enum class WorkPhase : std::uint8_t { kInterior, kBoundary, kOther };

/// Instrumentation options threaded through engine/algorithm options.
struct TraceConfig {
  /// When non-empty, every send / collective / round event is appended to
  /// this file as one JSON object per line.
  std::string jsonl_path;
};

/// Accumulates a run's instrumentation; owned by the CommFabric.
class CommTrace {
 public:
  explicit CommTrace(TraceConfig config = {});
  ~CommTrace();

  CommTrace(CommTrace&&) noexcept;
  CommTrace& operator=(CommTrace&&) noexcept;

  /// Registers one more rank (per-rank vectors grow).
  void add_rank();

  /// Sets the round label future sends from rank r are attributed to.
  void set_round(Rank r, int round);

  /// Sets every rank's round label (BSP-style global rounds).
  void set_round_all(int round);

  /// Sets the phase future charges on rank r are attributed to.
  void set_phase(Rank r, WorkPhase phase) noexcept;

  [[nodiscard]] int round(Rank r) const noexcept {
    return rank_round_[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] WorkPhase phase(Rank r) const noexcept {
    return rank_phase_[static_cast<std::size_t>(r)];
  }

  /// Installs rank r's phase timers and phase label from a deferred lane
  /// (assignment — the lane carried the snapshot baseline forward).
  void absorb_rank_compute(Rank r, double interior_seconds,
                           double boundary_seconds, double other_seconds,
                           WorkPhase phase) noexcept;

  /// Charged compute on rank r, attributed to r's current phase.
  void on_compute(Rank r, double seconds);
  /// Charged compute with an explicit one-shot phase.
  void on_compute(Rank r, double seconds, WorkPhase phase);

  /// One point-to-point message; `total_bytes` includes the envelope,
  /// `payload_bytes` is the encoded payload alone.
  void on_send(double time, Rank src, Rank dst, std::int64_t total_bytes,
               std::int64_t payload_bytes, std::int64_t records);

  /// One barrier / allreduce completing at `time`.
  void on_collective(double time);

  /// Fault-layer events; attribution follows FaultStats' documented charging
  /// (drop/duplicate to the sender, suppression to the receiver, retry and
  /// backoff to the retransmitting rank) at that rank's current round label.
  void on_drop(double time, Rank src, Rank dst, std::int64_t total_bytes);
  void on_duplicate(double time, Rank src, Rank dst, std::int64_t total_bytes);
  void on_corrupt(double time, Rank src, Rank dst, std::int64_t total_bytes);
  void on_dup_suppressed(double time, Rank dst);
  void on_corruption_detected(double time, Rank dst);
  void on_retry(double time, Rank src, Rank dst, int attempt);
  void on_backoff(Rank src, double seconds);

  [[nodiscard]] const CommBreakdown& breakdown() const noexcept {
    return breakdown_;
  }

 private:
  CommStats& round_slot(int round);
  FaultStats& fault_round_slot(int round);
  FaultStats& fault_rank_slot(Rank r);
  void emit_json(const std::string& line);

  TraceConfig config_;
  CommBreakdown breakdown_;
  std::vector<int> rank_round_;
  std::vector<WorkPhase> rank_phase_;
  /// Highest round label seen; collectives are attributed to it (they are
  /// global events, meaningful only for the BSP engine's global rounds).
  int global_round_ = 0;
  std::unique_ptr<std::ofstream> sink_;
};

}  // namespace pmc
