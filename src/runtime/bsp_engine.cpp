#include "runtime/bsp_engine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pmc {

BspEngine::BspEngine(Rank num_ranks, MachineModel model, TraceConfig trace)
    : BspEngine(num_ranks, std::move(model),
                CommFabric::Config{0.0, 0, FaultConfig{}, std::move(trace)}) {}

BspEngine::BspEngine(Rank num_ranks, MachineModel model, FabricConfig config,
                     ExecConfig exec)
    : fabric_(std::move(model), std::move(config)), backend_(exec) {
  PMC_REQUIRE(num_ranks >= 1, "need at least one rank");
  for (Rank r = 0; r < num_ranks; ++r) (void)fabric_.add_rank();
  inboxes_.resize(static_cast<std::size_t>(num_ranks));
}

void BspEngine::charge(Rank r, double work_units) {
  fabric_.charge(r, work_units);
}

void BspEngine::charge(Rank r, double work_units, WorkPhase phase) {
  fabric_.charge(r, work_units, phase);
}

CommFabric::SendReceipt BspEngine::send(Rank src, Rank dst,
                                        std::vector<std::byte> payload,
                                        std::int64_t records) {
  const auto receipt = fabric_.post_send(src, dst, payload.size(), records);
  if (receipt.dropped) return receipt;  // lost: never reaches the inbox
  // A duplicated copy is filtered at the receiver rather than delivered: a
  // copy straggling into a *later* round would carry a stale color and could
  // make conflict detection asymmetric. (The event engine's transport does
  // the same by sequence number; here the round structure stands in for it.)
  if (receipt.duplicated) fabric_.note_dup_suppressed(dst);
  if (receipt.corrupted) {
    // Rejected by the receiver's checksum: discarded like a drop, and the
    // algorithm recovers the same way (the receipt reports the verdict).
    reject_corrupted(dst, receipt, std::move(payload));
    return receipt;
  }
  deliver(dst, src, receipt.arrival, std::move(payload));
  return receipt;
}

void BspEngine::reject_corrupted(Rank dst,
                                 const CommFabric::SendReceipt& receipt,
                                 std::vector<std::byte> payload) {
  // Honest detection: physically flip a bit of the delivered copy and let
  // frame validation reject it (empty payloads have nothing to flip and are
  // rejected outright).
  if (!payload.empty()) corrupt_one_bit(payload, receipt.seq);
  PMC_CHECK(payload.empty() || !FrameReader(payload).valid(),
            "garbled frame passed checksum validation");
  fabric_.note_corruption_detected(dst);
}

void BspEngine::deliver(Rank dst, Rank src, double arrival,
                        std::vector<std::byte> payload) {
  BspMessage msg;
  msg.src = src;
  msg.arrival = arrival;
  msg.payload = std::move(payload);
  // Insert keeping the inbox sorted by arrival; messages mostly arrive in
  // order so the scan from the back is near O(1).
  auto& inbox = inboxes_[static_cast<std::size_t>(dst)];
  auto pos = inbox.end();
  while (pos != inbox.begin() && std::prev(pos)->arrival > msg.arrival) {
    --pos;
  }
  inbox.insert(pos, std::move(msg));
}

std::vector<BspMessage> BspEngine::poll(Rank r) {
  auto& inbox = inboxes_[static_cast<std::size_t>(r)];
  const double now_r = fabric_.now(r);
  std::vector<BspMessage> out;
  while (!inbox.empty() && inbox.front().arrival <= now_r) {
    out.push_back(std::move(inbox.front()));
    inbox.pop_front();
  }
  return out;
}

void BspEngine::barrier() {
  double horizon = fabric_.max_time();
  for (const auto& inbox : inboxes_) {
    for (const auto& msg : inbox) {
      horizon = std::max(horizon, msg.arrival);
    }
  }
  fabric_.complete_collective(horizon);
}

std::vector<BspMessage> BspEngine::drain(Rank r) {
  auto& inbox = inboxes_[static_cast<std::size_t>(r)];
  std::vector<BspMessage> out(std::make_move_iterator(inbox.begin()),
                              std::make_move_iterator(inbox.end()));
  inbox.clear();
  // Receiving after a barrier: the rank has already waited past all
  // arrivals, so its clock does not move here.
  return out;
}

void BspEngine::allreduce() { barrier(); }

BspEngine::RankCtx::RankCtx(BspEngine& engine, Rank r, bool deferred)
    : engine_(&engine), rank_(r), deferred_(deferred) {
  if (deferred_) lane_ = engine.fabric_.make_lane(r);
}

double BspEngine::RankCtx::now() const {
  return deferred_ ? lane_.now() : engine_->now(rank_);
}

void BspEngine::RankCtx::charge(double work_units) {
  if (deferred_) {
    lane_.charge(work_units);
  } else {
    engine_->charge(rank_, work_units);
  }
}

void BspEngine::RankCtx::charge(double work_units, WorkPhase phase) {
  if (deferred_) {
    lane_.charge(work_units, phase);
  } else {
    engine_->charge(rank_, work_units, phase);
  }
}

void BspEngine::RankCtx::send(Rank dst, std::vector<std::byte> payload,
                              std::int64_t records) {
  if (deferred_) {
    const double send_time = lane_.begin_send();
    sends_.push_back(
        {dst, std::move(payload), records, send_time, ReceiptFn{}});
  } else {
    (void)engine_->send(rank_, dst, std::move(payload), records);
  }
}

void BspEngine::RankCtx::send(Rank dst, std::vector<std::byte> payload,
                              std::int64_t records, ReceiptFn on_receipt) {
  if (deferred_) {
    const double send_time = lane_.begin_send();
    sends_.push_back(
        {dst, std::move(payload), records, send_time, std::move(on_receipt)});
    return;
  }
  // The engine consumes the payload on delivery, so keep a copy for the
  // callback (only sends whose verdict matters take this path).
  const std::vector<std::byte> kept = payload;
  const auto receipt = engine_->send(rank_, dst, std::move(payload), records);
  on_receipt(receipt, std::span<const std::byte>(kept));
}

std::vector<BspMessage> BspEngine::RankCtx::poll() {
  PMC_REQUIRE(!deferred_,
              "RankCtx::poll() reads cross-rank state and is only available "
              "in sequential phases (run_ranks(allow_parallel=false))");
  return engine_->poll(rank_);
}

std::vector<BspMessage> BspEngine::RankCtx::drain() {
  return engine_->drain(rank_);
}

void BspEngine::run_ranks(bool allow_parallel,
                          const std::function<void(RankCtx&)>& body) {
  const Rank P = num_ranks();
  if (!allow_parallel || backend_.mode() == ExecMode::kSequential) {
    for (Rank r = 0; r < P; ++r) {
      RankCtx ctx(*this, r, /*deferred=*/false);
      body(ctx);
    }
    return;
  }
  std::vector<RankCtx> ctxs;
  ctxs.reserve(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    ctxs.push_back(RankCtx(*this, r, /*deferred=*/true));
  }
  // Rank callbacks run concurrently against their lanes; the fabric itself
  // is only read. Per-rank inboxes (drain) are disjoint between callbacks.
  backend_.parallel_for(static_cast<std::size_t>(P),
                        [&](std::size_t i) { body(ctxs[i]); });
  // Merging in ascending rank order restores the sequential global order of
  // sequence numbers, FIFO channel state, stats and trace output.
  for (Rank r = 0; r < P; ++r) merge(ctxs[static_cast<std::size_t>(r)]);
}

void BspEngine::merge(RankCtx& ctx) {
  // Absorb the lane before replaying its sends: a send's dup-suppression
  // trace event reads the *receiver's* clock, which must already be final
  // for lower ranks and still pre-phase for higher ranks — exactly the state
  // sequential execution would observe at this rank's turn.
  fabric_.absorb_lane(ctx.lane_);
  for (auto& s : ctx.sends_) {
    const auto receipt = fabric_.post_send_at(ctx.rank_, s.dst,
                                              s.payload.size(), s.records,
                                              s.send_time);
    if (receipt.duplicated) fabric_.note_dup_suppressed(s.dst);
    // Mirror the direct path's event order (detection precedes the receipt
    // callback); the callback still sees the *original* bytes, so only a
    // copy is garbled.
    if (!receipt.dropped && receipt.corrupted) {
      reject_corrupted(s.dst, receipt, s.payload);
    }
    if (s.on_receipt) {
      s.on_receipt(receipt, std::span<const std::byte>(s.payload));
    }
    if (!receipt.dropped && !receipt.corrupted) {
      deliver(s.dst, ctx.rank_, receipt.arrival, std::move(s.payload));
    }
  }
  ctx.sends_.clear();
}

}  // namespace pmc
