# Empty dependencies file for test_matching_dist.
# This may be replaced when dependencies are built.
