// Fixture: D10 must fire twice — an allow() that no longer matches any
// diagnostic and a schema() annotation bound to a function with no typed
// accessor calls. Scan fodder for the lint fixture suite, not compiled.
#include <cstdint>

// pmc-lint: allow(D1): was load-bearing before the sorted-snapshot refactor
std::int64_t plain_sum(const std::int64_t* xs, std::int64_t n) {
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < n; ++i) total += xs[i];
  return total;
}

// pmc-lint: schema(GhostRecord)
std::int64_t not_a_codec(std::int64_t v) { return plain_sum(&v, 1); }
