#include "runtime/event_engine.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/timer.hpp"

namespace pmc {

namespace {

/// Modelled wire overhead of the reliable transport (faults enabled only):
/// a kind tag plus the 8-byte channel sequence number on every data
/// message, and the same 12 bytes as an ack's whole payload.
constexpr std::size_t kTransportHeaderBytes = 12;
constexpr std::size_t kAckPayloadBytes = 12;

}  // namespace

EventContext::EventContext(EventEngine& engine, Rank rank, bool deferred)
    : engine_(&engine), rank_(rank), deferred_(deferred) {
  if (deferred_) lane_ = engine.fabric_.make_lane(rank);
}

Rank EventContext::num_ranks() const noexcept { return engine_->num_ranks(); }

void EventContext::charge(double work_units) noexcept {
  if (deferred_) {
    lane_.charge(work_units);
  } else {
    engine_->fabric_.charge(rank_, work_units);
  }
}

void EventContext::send(Rank dst, std::vector<std::byte> payload,
                        std::int64_t records) {
  if (!deferred_) {
    engine_->enqueue(rank_, dst, std::move(payload), records);
    return;
  }
  // With the reliable transport, a one-attempt budget makes the very first
  // transmit the (fault-exempt) reliable tail; the lane must skip the stall
  // wait exactly as post_send() would for an exempt send.
  const FaultConfig& F = engine_->fabric_.config().fault;
  const bool exempt_first =
      engine_->transport_ && F.max_attempts == 1 && F.reliable_tail;
  DeferredOp op;
  op.kind = DeferredOp::Kind::kSend;
  op.dst = dst;
  op.payload = std::move(payload);
  op.records = records;
  op.send_time = lane_.begin_send(exempt_first);
  ops_.push_back(std::move(op));
}

double EventContext::now() const noexcept {
  return deferred_ ? lane_.now() : engine_->fabric_.now(rank_);
}

void EventContext::set_round(int round) {
  if (deferred_) {
    DeferredOp op;
    op.kind = DeferredOp::Kind::kRound;
    op.round = round;
    ops_.push_back(std::move(op));
  } else {
    engine_->fabric_.set_round(rank_, round);
  }
}

void EventContext::set_phase(WorkPhase phase) noexcept {
  if (deferred_) {
    lane_.set_phase(phase);
  } else {
    engine_->fabric_.set_phase(rank_, phase);
  }
}

EventEngine::EventEngine(MachineModel model, FabricConfig config,
                         ExecConfig exec)
    : fabric_(std::move(model), std::move(config)),
      backend_(exec),
      transport_(fabric_.config().fault.enabled()) {}

EventEngine::EventEngine(MachineModel model, double jitter_seconds,
                         std::uint64_t jitter_seed, TraceConfig trace)
    : EventEngine(std::move(model),
                  CommFabric::Config{jitter_seconds, jitter_seed,
                                     FaultConfig{}, std::move(trace)}) {}

Rank EventEngine::add_process(std::unique_ptr<Process> process) {
  PMC_REQUIRE(process != nullptr, "null process");
  PMC_REQUIRE(!ran_, "cannot add processes after run()");
  processes_.push_back(std::move(process));
  return fabric_.add_rank();
}

void EventEngine::push_event(Event ev) {
  ev.seq = order_seq_++;
  queue_.push(std::move(ev));
  ++events_posted_;
}

void EventEngine::enqueue(Rank src, Rank dst, std::vector<std::byte> payload,
                          std::int64_t records) {
  if (!transport_) {
    const auto receipt = fabric_.post_send(src, dst, payload.size(), records);
    Event ev;
    ev.time = receipt.arrival;
    ev.src = src;
    ev.dst = dst;
    ev.payload = std::move(payload);
    push_event(std::move(ev));
    return;
  }
  const std::uint64_t channel = channel_key(src, dst);
  const std::uint64_t tseq = next_tseq_[channel]++;
  Pending& entry = unacked_[channel][tseq];
  entry.payload = std::move(payload);
  entry.records = records;
  transmit(src, dst, tseq);
}

void EventEngine::enqueue_at(Rank src, Rank dst,
                             std::vector<std::byte> payload,
                             std::int64_t records, double send_time) {
  if (!transport_) {
    const auto receipt =
        fabric_.post_send_at(src, dst, payload.size(), records, send_time);
    Event ev;
    ev.time = receipt.arrival;
    ev.src = src;
    ev.dst = dst;
    ev.payload = std::move(payload);
    push_event(std::move(ev));
    return;
  }
  const std::uint64_t channel = channel_key(src, dst);
  const std::uint64_t tseq = next_tseq_[channel]++;
  Pending& entry = unacked_[channel][tseq];
  entry.payload = std::move(payload);
  entry.records = records;
  transmit(src, dst, tseq, send_time);
}

void EventEngine::transmit(Rank src, Rank dst, std::uint64_t tseq,
                           double deferred_send_time) {
  const FaultConfig& F = fabric_.config().fault;
  const std::uint64_t channel = channel_key(src, dst);
  Pending& entry = unacked_[channel][tseq];
  entry.attempt += 1;
  const bool final_attempt = entry.attempt >= F.max_attempts;
  const bool exempt = final_attempt && F.reliable_tail;
  const bool deferred = deferred_send_time >= 0.0;
  const auto receipt =
      deferred
          ? fabric_.post_send_at(src, dst,
                                 entry.payload.size() + kTransportHeaderBytes,
                                 entry.records, deferred_send_time, exempt)
          : fabric_.post_send(src, dst,
                              entry.payload.size() + kTransportHeaderBytes,
                              entry.records, exempt);
  if (receipt.dropped) {
    if (final_attempt) {
      // reliable_tail is off and the last try was lost: no further recovery
      // is possible, fail loudly rather than hang or silently diverge.
      PMC_FAIL("retry budget exhausted: rank " << src << " -> rank " << dst
               << " tseq " << tseq << " lost after " << entry.attempt
               << " attempts");
    }
  } else {
    if (receipt.corrupted && final_attempt) {
      // A corrupted copy will be rejected at the receiver, so without the
      // reliable tail (an exempt send is never corrupted) the message is as
      // lost as a drop — same loud failure.
      PMC_FAIL("retry budget exhausted: rank " << src << " -> rank " << dst
               << " tseq " << tseq << " garbled after " << entry.attempt
               << " attempts");
    }
    Event ev;
    ev.time = receipt.arrival;
    ev.src = src;
    ev.dst = dst;
    ev.payload = entry.payload;  // keep the original for retransmission
    ev.tseq = tseq;
    ev.corrupted = receipt.corrupted;
    // Physically garble the delivered copy (never the retransmission
    // source) so the receiver's checksum check rejects it honestly.
    if (ev.corrupted && !ev.payload.empty()) {
      corrupt_one_bit(ev.payload, receipt.seq);
    }
    push_event(std::move(ev));
    if (receipt.duplicated) {
      Event dup;
      dup.time = receipt.duplicate_arrival;
      dup.src = src;
      dup.dst = dst;
      dup.payload = entry.payload;
      dup.tseq = tseq;
      push_event(std::move(dup));
    }
  }
  if (final_attempt) {
    // Exempt tail: delivery is guaranteed, drop the retransmission state
    // (a late ack for an earlier try is ignored harmlessly). Without the
    // tail a delivered final try just stops retrying; the entry stays until
    // its ack arrives, or inertly forever if that ack is lost.
    if (exempt) unacked_[channel].erase(tseq);
  } else {
    Event timer;
    timer.kind = EventKind::kTimer;
    // Sequentially the clock sits at the send time here; a deferred replay
    // must use the recorded send time (the live clock has already absorbed
    // the whole lane) to arm the timer identically.
    const double base = deferred ? deferred_send_time : fabric_.now(src);
    timer.time =
        base + F.rto_seconds * std::pow(F.rto_backoff, entry.attempt - 1);
    timer.src = dst;  // peer the pending message targets
    timer.dst = src;  // rank whose timer fires
    timer.tseq = tseq;
    push_event(std::move(timer));
  }
}

void EventEngine::send_ack(Rank from, Rank to, std::uint64_t tseq) {
  // Acks ride the same lossy fabric (a lost ack is what makes duplicate
  // suppression necessary) but are never themselves retried.
  const auto receipt = fabric_.post_send(from, to, kAckPayloadBytes, 0);
  if (receipt.dropped) return;
  Event ev;
  ev.kind = EventKind::kAck;
  ev.time = receipt.arrival;
  ev.src = from;
  ev.dst = to;
  ev.tseq = tseq;
  // An ack's payload is modelled-only (no bytes to flip): the corrupted
  // flag alone marks it for rejection at the sender.
  ev.corrupted = receipt.corrupted;
  push_event(std::move(ev));
  if (receipt.duplicated) {
    Event dup = ev;
    dup.time = receipt.duplicate_arrival;
    dup.payload.clear();
    push_event(std::move(dup));
  }
}

void EventEngine::dispatch(Event ev) {
  switch (ev.kind) {
    case EventKind::kData: {
      fabric_.advance_to(ev.dst, ev.time);
      if (ev.corrupted) {
        // Honest detection: the delivered bytes themselves must fail frame
        // validation (empty payloads have nothing to flip and are rejected
        // outright). No ack — the sender's retry timer recovers.
        PMC_CHECK(ev.payload.empty() || !FrameReader(ev.payload).valid(),
                  "garbled frame passed checksum validation");
        fabric_.note_corruption_detected(ev.dst);
        return;
      }
      if (transport_) {
        const std::uint64_t channel = channel_key(ev.src, ev.dst);
        const bool fresh = delivered_[channel].insert(ev.tseq).second;
        // Always (re-)ack: the sender may be retrying because an earlier
        // ack was lost.
        send_ack(ev.dst, ev.src, ev.tseq);
        if (!fresh) {
          fabric_.note_dup_suppressed(ev.dst);
          return;
        }
      }
      EventContext ctx(*this, ev.dst);
      processes_[static_cast<std::size_t>(ev.dst)]->handle(ctx, ev.src,
                                                           ev.payload);
      return;
    }
    case EventKind::kAck: {
      fabric_.advance_to(ev.dst, ev.time);
      if (ev.corrupted) {
        // A garbled ack is rejected, not trusted: the pending entry stays
        // and the data message will be retransmitted (then re-acked).
        fabric_.note_corruption_detected(ev.dst);
        return;
      }
      auto chan = unacked_.find(channel_key(ev.dst, ev.src));
      if (chan != unacked_.end()) chan->second.erase(ev.tseq);
      return;
    }
    case EventKind::kTimer: {
      const Rank sender = ev.dst;
      const Rank peer = ev.src;
      auto chan = unacked_.find(channel_key(sender, peer));
      if (chan == unacked_.end()) return;
      auto it = chan->second.find(ev.tseq);
      if (it == chan->second.end()) return;  // acked meanwhile: timer no-ops
      // Still unacknowledged: the rank sat out the timeout, then retries.
      const double waited = ev.time - fabric_.now(sender);
      if (waited > 0.0) fabric_.note_backoff(sender, waited);
      fabric_.advance_to(sender, ev.time);
      fabric_.note_retry(sender, peer, it->second.attempt + 1);
      transmit(sender, peer, ev.tseq);
      return;
    }
  }
}

void EventEngine::fan_out(const std::vector<Rank>& ranks, FanPhase phase) {
  const auto invoke = [&](EventContext& ctx) {
    Process& p = *processes_[static_cast<std::size_t>(ctx.rank_)];
    if (phase == FanPhase::kStart) {
      p.start(ctx);
    } else {
      p.idle(ctx);
    }
  };
  if (backend_.mode() == ExecMode::kSequential) {
    for (Rank r : ranks) {
      EventContext ctx(*this, r);
      invoke(ctx);
    }
    return;
  }
  std::vector<EventContext> ctxs;
  ctxs.reserve(ranks.size());
  for (Rank r : ranks) ctxs.push_back(EventContext(*this, r, true));
  // Callbacks run concurrently against their lanes (the shared fabric is
  // only read); the rank-ordered merge below restores the sequential global
  // order of sequence numbers, transport state and trace output.
  backend_.parallel_for(ctxs.size(),
                        [&](std::size_t i) { invoke(ctxs[i]); });
  for (EventContext& ctx : ctxs) merge_deferred(ctx);
}

void EventEngine::merge_deferred(EventContext& ctx) {
  fabric_.absorb_lane(ctx.lane_);
  for (EventContext::DeferredOp& op : ctx.ops_) {
    if (op.kind == EventContext::DeferredOp::Kind::kRound) {
      fabric_.set_round(ctx.rank_, op.round);
      continue;
    }
    enqueue_at(ctx.rank_, op.dst, std::move(op.payload), op.records,
               op.send_time);
  }
  ctx.ops_.clear();
}

RunResult EventEngine::run() {
  PMC_REQUIRE(!ran_, "EventEngine::run() may only be called once");
  PMC_REQUIRE(!processes_.empty(), "no processes registered");
  ran_ = true;
  WallTimer wall;

  {
    std::vector<Rank> all(static_cast<std::size_t>(num_ranks()));
    for (Rank r = 0; r < num_ranks(); ++r) {
      all[static_cast<std::size_t>(r)] = r;
    }
    fan_out(all, FanPhase::kStart);
  }

  while (true) {
    while (!queue_.empty()) {
      // priority_queue::top is const; the payload move is safe because the
      // element is popped immediately after.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      dispatch(std::move(ev));
    }
    bool all_done = true;
    for (const auto& p : processes_) {
      if (!p->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;

    // Quiescent but unfinished: give stuck ranks a chance to make progress.
    // Progress = new messages or a done-state change; otherwise deadlock.
    const std::uint64_t posted_before = events_posted_;
    Rank done_before = 0;
    for (const auto& p : processes_) {
      if (p->done()) ++done_before;
    }
    std::vector<Rank> stuck;
    for (Rank r = 0; r < num_ranks(); ++r) {
      if (!processes_[static_cast<std::size_t>(r)]->done()) stuck.push_back(r);
    }
    fan_out(stuck, FanPhase::kIdle);
    Rank done_after = 0;
    for (const auto& p : processes_) {
      if (p->done()) ++done_after;
    }
    if (queue_.empty() && events_posted_ == posted_before &&
        done_after == done_before) {
      std::ostringstream oss;
      oss << "distributed computation deadlocked; unfinished ranks:";
      int listed = 0;
      for (Rank r = 0; r < num_ranks() && listed < 8; ++r) {
        if (!processes_[static_cast<std::size_t>(r)]->done()) {
          oss << " [rank " << r << ": "
              << processes_[static_cast<std::size_t>(r)]->debug_state() << "]";
          ++listed;
        }
      }
      PMC_FAIL(oss.str());
    }
  }

  RunResult result;
  fabric_.export_into(result);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace pmc
