// Fixture: D1 must stay silent — the staging map is walked through the
// sorted-snapshot helper, and a plain vector iteration is never flagged.
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/sorted.hpp"

struct FrameWriter {};
using Rank = std::int32_t;

void ship(void (*send)(Rank, FrameWriter&)) {
  std::unordered_map<Rank, FrameWriter> out;
  for (const Rank dst : pmc::sorted_keys(out)) {
    send(dst, out.at(dst));
  }
  std::vector<Rank> touched;
  for (const Rank dst : touched) {
    send(dst, out.at(dst));
  }
}
