# Empty compiler generated dependencies file for test_metis_io.
# This may be replaced when dependencies are built.
